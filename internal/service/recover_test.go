package service

// Restart-recovery tests: durable queries survive losing the whole
// process. Each test runs a service "life", kills it (Close, or just
// abandoning it mid-run), then boots a second life over the same
// journal directory and asserts the three durability invariants from
// the chaos spec: bit-identical rows, no duplicate crowd work, and
// tenant ledgers charged exactly once per HIT group.

import (
	"errors"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"qurk/internal/answerstore"
	"qurk/internal/circuit"
	"qurk/internal/core"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/hit"
	"qurk/internal/relation"
)

// durableConfig builds a one-backend config over the celebrity
// dataset with the journal directory set.
func durableConfig(t testing.TB, n int, dir string, market crowd.Marketplace) Config {
	t.Helper()
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: n, Seed: 1})
	cat := relation.NewCatalog()
	cat.Register(d.Celeb)
	cat.Register(d.Photos)
	lib := core.NewLibrary()
	lib.MustRegister(dataset.IsFemaleTask())
	lib.MustRegister(dataset.SamePersonTask())
	store, err := answerstore.Open("", answerstore.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Backends:   map[string]crowd.Marketplace{"sim": market},
		Catalog:    cat,
		Library:    lib,
		Answers:    store,
		Options:    core.Options{Assignments: 3, FilterBatch: 2},
		JournalDir: dir,
	}
}

// trackingSim builds a fresh post-tracking simulated market over an
// identically seeded world, so every life (and the baseline) samples
// the same workers for the same HITs.
func trackingSim(n int) *crowd.SimMarket {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: n, Seed: 1})
	cfg := crowd.DefaultConfig(1)
	cfg.TrackPosts = true
	return crowd.NewSimMarket(cfg, d.Oracle())
}

// joinQuery posts many HIT groups (18 at n=12), so a fault injector
// can kill the backend genuinely mid-query.
const joinQuery = `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)`

// rowStrings flattens a query's result rows, sorted, for content
// comparison across lives (streamed arrival order is not part of the
// durability contract; the row multiset is).
func rowStrings(q *Query) []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]string, 0, len(q.rows))
	for _, r := range q.rows {
		var cols []string
		for c := 0; c < r.Len(); c++ {
			cols = append(cols, r.At(c).String())
		}
		out = append(out, strings.Join(cols, "|"))
	}
	sort.Strings(out)
	return out
}

// postedSet returns the market's admission log as a set of HIT IDs.
func postedSet(m *crowd.SimMarket) map[string]bool {
	out := map[string]bool{}
	for _, id := range m.PostedHITs() {
		out[id] = true
	}
	return out
}

// failAfter lets limit groups through to the inner marketplace, then
// fails every later post — the in-process stand-in for the backend
// dying mid-query.
type failAfter struct {
	inner crowd.Marketplace
	limit int32
	n     int32
}

var errInjectedOutage = errors.New("injected marketplace outage")

func (f *failAfter) Run(g *hit.Group) (*crowd.RunResult, error) {
	if atomic.AddInt32(&f.n, 1) > f.limit {
		return nil, errInjectedOutage
	}
	return f.inner.Run(g)
}

func (f *failAfter) RunAsync(g *hit.Group) <-chan crowd.Async {
	return crowd.GoRun(func() (*crowd.RunResult, error) { return f.Run(g) })
}

// TestRestartResumesInterruptedQuery is the tentpole invariant in one
// process: a query that dies mid-run (backend outage partway through
// the join's groups, journal sealed "interrupted") resumes on boot and
// ends with the rows, crowd work, and tenant charges of a run that
// never crashed.
func TestRestartResumesInterruptedQuery(t *testing.T) {
	const n = 12
	dir := t.TempDir()

	// Baseline: the same query on an identical world, no crash.
	blMarket := trackingSim(n)
	blCfg := durableConfig(t, n, t.TempDir(), blMarket)
	baseline, err := New(blCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := baseline.Recover(); err != nil {
		t.Fatal(err)
	}
	bq, err := baseline.Submit(SubmitRequest{Tenant: "alice", Query: joinQuery})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, bq); st != StateDone {
		t.Fatalf("baseline state = %s (%s)", st, bq.Snapshot().Error)
	}
	wantRows := rowStrings(bq)
	wantPosted := postedSet(blMarket)
	blTenant, _ := baseline.TenantSnapshot("alice")
	baseline.Close()

	// Life 1: the backend dies after six of the join's 18 groups; the
	// query fails and its journal seals "interrupted".
	m1 := trackingSim(n)
	svc1, err := New(durableConfig(t, n, dir, &failAfter{inner: m1, limit: 6}))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc1.Recover(); err != nil {
		t.Fatal(err)
	}
	q1, err := svc1.Submit(SubmitRequest{Tenant: "alice", Query: joinQuery})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, q1); st != StateFailed {
		t.Fatalf("life-1 state = %s, want failed", st)
	}
	if !strings.Contains(q1.Snapshot().Error, errInjectedOutage.Error()) {
		t.Fatalf("life-1 error = %q, want the injected outage", q1.Snapshot().Error)
	}
	posted1 := postedSet(m1)
	if len(posted1) == 0 || len(posted1) >= len(wantPosted) {
		t.Fatalf("life 1 posted %d of %d HITs; the fault did not land mid-query", len(posted1), len(wantPosted))
	}
	t1, _ := svc1.TenantSnapshot("alice")
	if t1.SpentDollars <= 0 {
		t.Fatal("life 1 charged nothing before dying")
	}
	svc1.Close()

	// Life 2: fresh process, fresh registry, healthy backend. Recover
	// must resume q0001 under alice and finish it.
	m2 := trackingSim(n)
	svc2, err := New(durableConfig(t, n, dir, m2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc2.Close)
	if err := svc2.Recover(); err != nil {
		t.Fatal(err)
	}
	q2, ok := svc2.Get(q1.ID)
	if !ok {
		t.Fatalf("recovered service lost query %s", q1.ID)
	}
	if st := waitTerminal(t, q2); st != StateDone {
		t.Fatalf("resumed state = %s (%s)", st, q2.Snapshot().Error)
	}

	// Invariant 1: bit-identical rows.
	gotRows := rowStrings(q2)
	if len(gotRows) != len(wantRows) {
		t.Fatalf("resumed rows = %d, baseline = %d", len(gotRows), len(wantRows))
	}
	for i := range wantRows {
		if gotRows[i] != wantRows[i] {
			t.Fatalf("row %d diverged after restart: %q vs %q", i, gotRows[i], wantRows[i])
		}
	}

	// Invariant 2: no duplicate crowd work. Life 2 posts exactly the
	// HITs life 1 never got to; together they are the baseline set.
	posted2 := postedSet(m2)
	for id := range posted2 {
		if posted1[id] {
			t.Fatalf("HIT %s was posted in both lives", id)
		}
	}
	if got := len(posted1) + len(posted2); got != len(wantPosted) {
		t.Fatalf("lives posted %d+%d HITs, baseline posted %d", len(posted1), len(posted2), len(wantPosted))
	}
	for id := range wantPosted {
		if !posted1[id] && !posted2[id] {
			t.Fatalf("baseline HIT %s never posted across both lives", id)
		}
	}

	// Invariant 3: the tenant ledger charged each group exactly once
	// across both lives — the recovered ledger matches the crash-free
	// baseline to the cent.
	t2, _ := svc2.TenantSnapshot("alice")
	if t2.SpentDollars != blTenant.SpentDollars || t2.HITs != blTenant.HITs {
		t.Fatalf("recovered ledger $%.3f/%d HITs, baseline $%.3f/%d HITs",
			t2.SpentDollars, t2.HITs, blTenant.SpentDollars, blTenant.HITs)
	}

	// New submissions never collide with recovered IDs.
	q3, err := svc2.Submit(SubmitRequest{Tenant: "alice", Query: joinQuery})
	if err != nil {
		t.Fatal(err)
	}
	if q3.ID == q2.ID {
		t.Fatalf("new submission reused recovered ID %s", q3.ID)
	}
	waitTerminal(t, q3)
}

// TestRestartReplaysCompletedQuery: a query that finished before the
// restart comes back done with its rows servable, posting nothing and
// charging nothing — the sealed-complete journal replays for free.
func TestRestartReplaysCompletedQuery(t *testing.T) {
	const n = 10
	dir := t.TempDir()

	m1 := trackingSim(n)
	svc1, err := New(durableConfig(t, n, dir, m1))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc1.Recover(); err != nil {
		t.Fatal(err)
	}
	q1, err := svc1.Submit(SubmitRequest{Tenant: "alice", Query: isFemaleQuery})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, q1); st != StateDone {
		t.Fatalf("state = %s", st)
	}
	wantRows := rowStrings(q1)
	t1, _ := svc1.TenantSnapshot("alice")
	svc1.Close()

	m2 := trackingSim(n)
	svc2, err := New(durableConfig(t, n, dir, m2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc2.Close)
	if err := svc2.Recover(); err != nil {
		t.Fatal(err)
	}
	q2, ok := svc2.Get(q1.ID)
	if !ok {
		t.Fatal("completed query not recovered")
	}
	if st := waitTerminal(t, q2); st != StateDone {
		t.Fatalf("replayed state = %s (%s)", st, q2.Snapshot().Error)
	}
	gotRows := rowStrings(q2)
	if len(gotRows) != len(wantRows) {
		t.Fatalf("replayed %d rows, want %d", len(gotRows), len(wantRows))
	}
	for i := range wantRows {
		if gotRows[i] != wantRows[i] {
			t.Fatalf("row %d diverged on replay: %q vs %q", i, gotRows[i], wantRows[i])
		}
	}
	if posted := m2.PostedHITs(); len(posted) != 0 {
		t.Fatalf("replay posted %d HITs, want 0", len(posted))
	}
	t2, _ := svc2.TenantSnapshot("alice")
	if t2.SpentDollars != t1.SpentDollars || t2.HITs != t1.HITs {
		t.Fatalf("replay ledger $%.3f/%d, want $%.3f/%d", t2.SpentDollars, t2.HITs, t1.SpentDollars, t1.HITs)
	}
}

// TestRecoverRejectsFingerprintMismatch: a manifest whose query no
// longer matches its journal is refused — that one query surfaces as
// failed with the mismatch spelled out, and the daemon keeps serving.
func TestRecoverRejectsFingerprintMismatch(t *testing.T) {
	const n = 8
	dir := t.TempDir()

	svc1, err := New(durableConfig(t, n, dir, trackingSim(n)))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc1.Recover(); err != nil {
		t.Fatal(err)
	}
	q1, err := svc1.Submit(SubmitRequest{Tenant: "alice", Query: isFemaleQuery})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, q1)
	svc1.Close()

	// Tamper: swap the manifest's query text for something else. The
	// stored fingerprint still matches the journal, but recomputing it
	// from the manifest's own contents exposes the drift.
	path := svc1.manifestPath(q1.ID)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(b), "isFemale", "isMale", 1)
	if tampered == string(b) {
		t.Fatal("tamper had no effect")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := trackingSim(n)
	svc2, err := New(durableConfig(t, n, dir, m2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc2.Close)
	if err := svc2.Recover(); err != nil {
		t.Fatal(err)
	}
	q2, ok := svc2.Get(q1.ID)
	if !ok {
		t.Fatal("mismatched query vanished instead of surfacing as failed")
	}
	sn := q2.Snapshot()
	if sn.State != StateFailed || !strings.Contains(sn.Error, "fingerprint mismatch") {
		t.Fatalf("mismatched query = %s (%q), want failed with fingerprint mismatch", sn.State, sn.Error)
	}
	if posted := m2.PostedHITs(); len(posted) != 0 {
		t.Fatalf("refused query still posted %d HITs", len(posted))
	}
	// The daemon lives: new submissions run normally.
	q3, err := svc2.Submit(SubmitRequest{Tenant: "bob", Query: isFemaleQuery})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, q3); st != StateDone {
		t.Fatalf("post-mismatch submission = %s", st)
	}
}

// TestUserCancelIsNotResumed: an explicit Cancel seals the journal
// "cancelled"; the next boot registers the query terminal instead of
// restarting work the user told us to stop paying for.
func TestUserCancelIsNotResumed(t *testing.T) {
	const n = 8
	dir := t.TempDir()

	blocked := &blockingMarket{release: make(chan struct{}), inner: trackingSim(n)}
	svc1, err := New(durableConfig(t, n, dir, blocked))
	if err != nil {
		t.Fatal(err)
	}
	defer close(blocked.release)
	if err := svc1.Recover(); err != nil {
		t.Fatal(err)
	}
	q1, err := svc1.Submit(SubmitRequest{Tenant: "alice", Query: isFemaleQuery})
	if err != nil {
		t.Fatal(err)
	}
	q1.Cancel()
	if st := waitTerminal(t, q1); st != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st)
	}
	svc1.Close()

	m2 := trackingSim(n)
	svc2, err := New(durableConfig(t, n, dir, m2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc2.Close)
	if err := svc2.Recover(); err != nil {
		t.Fatal(err)
	}
	q2, ok := svc2.Get(q1.ID)
	if !ok {
		t.Fatal("cancelled query not registered after restart")
	}
	if st := q2.Snapshot().State; st != StateCancelled {
		t.Fatalf("cancelled query recovered as %s", st)
	}
	if posted := m2.PostedHITs(); len(posted) != 0 {
		t.Fatalf("cancelled query posted %d HITs after restart", len(posted))
	}
}

// TestShutdownSealsInterruptedAndResumes: Close is not a cancel — a
// query cut off by shutdown seals "interrupted" and the next boot
// finishes it.
func TestShutdownSealsInterruptedAndResumes(t *testing.T) {
	const n = 10
	dir := t.TempDir()

	blocked := &blockingMarket{release: make(chan struct{}), inner: trackingSim(n)}
	svc1, err := New(durableConfig(t, n, dir, blocked))
	if err != nil {
		t.Fatal(err)
	}
	defer close(blocked.release)
	if err := svc1.Recover(); err != nil {
		t.Fatal(err)
	}
	q1, err := svc1.Submit(SubmitRequest{Tenant: "alice", Query: isFemaleQuery})
	if err != nil {
		t.Fatal(err)
	}
	// Shut down while the first group is still parked in the backend.
	svc1.Close()
	if st := q1.Snapshot().State; st != StateCancelled {
		t.Fatalf("shutdown left query %s", st)
	}

	m2 := trackingSim(n)
	svc2, err := New(durableConfig(t, n, dir, m2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc2.Close)
	if err := svc2.Recover(); err != nil {
		t.Fatal(err)
	}
	q2, ok := svc2.Get(q1.ID)
	if !ok {
		t.Fatal("shutdown query not recovered")
	}
	if st := waitTerminal(t, q2); st != StateDone {
		t.Fatalf("resumed-after-shutdown state = %s (%s)", st, q2.Snapshot().Error)
	}
	if sn := q2.Snapshot(); sn.Rows == 0 {
		t.Fatal("resumed query produced no rows")
	}
}

// stepClock blocks every Sleep until released, so deadline tests fire
// the watchdog on command rather than on the wall.
type stepClock struct {
	fire chan struct{}
}

func (c *stepClock) Now() time.Time        { return time.Time{} }
func (c *stepClock) Sleep(d time.Duration) { <-c.fire }

// TestDeadlineFailsOnlyOverdueQuery: when the clock blows one query's
// DeadlineHours, that query alone fails with ErrDeadlineExceeded (its
// journal sealed interrupted, so it resumes next boot); the sibling
// without a deadline is untouched.
func TestDeadlineFailsOnlyOverdueQuery(t *testing.T) {
	const n = 8
	dir := t.TempDir()

	blocked := &blockingMarket{release: make(chan struct{}), inner: trackingSim(n)}
	clock := &stepClock{fire: make(chan struct{})}
	cfg := durableConfig(t, n, dir, blocked)
	cfg.Clock = clock
	svc1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer close(blocked.release)
	if err := svc1.Recover(); err != nil {
		t.Fatal(err)
	}

	withDeadline := cfg.Options
	withDeadline.DeadlineHours = 1
	q1, err := svc1.Submit(SubmitRequest{Tenant: "alice", Query: isFemaleQuery, Options: &withDeadline})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := svc1.Submit(SubmitRequest{Tenant: "bob", Query: isFemaleQuery})
	if err != nil {
		t.Fatal(err)
	}

	close(clock.fire) // the service clock blows every armed deadline
	if st := waitTerminal(t, q1); st != StateFailed {
		t.Fatalf("overdue query = %s, want failed", st)
	}
	if !strings.Contains(q1.Snapshot().Error, ErrDeadlineExceeded.Error()) {
		t.Fatalf("overdue error = %q, want ErrDeadlineExceeded", q1.Snapshot().Error)
	}
	if st := q2.Snapshot().State; st.Terminal() {
		t.Fatalf("deadline-free sibling also terminal: %s", st)
	}
	svc1.Close()

	// The overdue journal sealed "interrupted": the next boot (wall
	// clock, so the 1h deadline never fires again during the test)
	// resumes and finishes it.
	m2 := trackingSim(n)
	svc2, err := New(durableConfig(t, n, dir, m2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc2.Close)
	if err := svc2.Recover(); err != nil {
		t.Fatal(err)
	}
	r1, ok := svc2.Get(q1.ID)
	if !ok {
		t.Fatal("overdue query not recovered")
	}
	if st := waitTerminal(t, r1); st != StateDone {
		t.Fatalf("resumed overdue query = %s (%s)", st, r1.Snapshot().Error)
	}
}

// downMarket fails every post while down, then heals.
type downMarket struct {
	inner crowd.Marketplace
	down  atomic.Bool
}

func (m *downMarket) Run(g *hit.Group) (*crowd.RunResult, error) {
	if m.down.Load() {
		return nil, errInjectedOutage
	}
	return m.inner.Run(g)
}

func (m *downMarket) RunAsync(g *hit.Group) <-chan crowd.Async {
	return crowd.GoRun(func() (*crowd.RunResult, error) { return m.Run(g) })
}

// TestCircuitOpenDegradesWithoutFailingQueries is the tentpole's
// degraded-mode acceptance: with the backend fully down, submitted
// queries neither fail nor lose work — the breaker parks them, the
// service reports degraded/not-ready — and when the backend comes
// back, they complete normally.
func TestCircuitOpenDegradesWithoutFailingQueries(t *testing.T) {
	const n = 8
	m := &downMarket{inner: trackingSim(n)}
	m.down.Store(true)
	cfg := durableConfig(t, n, t.TempDir(), m)
	cfg.Circuit = &circuit.Config{Threshold: 2, Cooldown: 5 * time.Millisecond}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	if err := svc.Recover(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := svc.Ready(); !ok {
		t.Fatal("service not ready before any failure")
	}

	q, err := svc.Submit(SubmitRequest{Tenant: "alice", Query: isFemaleQuery})
	if err != nil {
		t.Fatal(err)
	}

	// The breaker trips and the service degrades — but the query stays
	// alive, parked, not failed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := svc.Status()
		if st.State == "degraded" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never degraded; status %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if ok, reason := svc.Ready(); ok || !strings.Contains(reason, "circuit") {
		t.Fatalf("Ready() = %v %q during outage, want circuit-open reason", ok, reason)
	}
	if st := q.Snapshot().State; st.Terminal() {
		t.Fatalf("query went terminal (%s) during outage instead of parking", st)
	}

	// Backend recovers: the next half-open probe closes the circuit,
	// parked posts drain, and the query completes.
	m.down.Store(false)
	if st := waitTerminal(t, q); st != StateDone {
		t.Fatalf("query after recovery = %s (%s)", st, q.Snapshot().Error)
	}
	for {
		if ok, _ := svc.Ready(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service never returned to ready after backend recovery")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := svc.Status(); st.State != "ok" {
		t.Fatalf("status after recovery = %s, want ok", st.State)
	}
}

// BenchmarkServiceRecovery measures a cold boot over a journal
// directory of completed queries: Recover scans, replays every journal
// for free (the "posted" metric proves zero marketplace traffic), and
// all queries reach a servable terminal state.
func BenchmarkServiceRecovery(b *testing.B) {
	const n, queries = 10, 4
	dir := b.TempDir()

	// No shared answer store here: with reuse on, later seed queries
	// post nothing and journal nothing, so their replay would depend on
	// recovery ORDER repopulating the store. Self-contained journals
	// make the zero-repost assertion unconditional.
	seedCfg := durableConfig(b, n, dir, trackingSim(n))
	seedCfg.Answers = nil
	seed, err := New(seedCfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := seed.Recover(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < queries; i++ {
		q, err := seed.Submit(SubmitRequest{Tenant: "alice", Query: isFemaleQuery})
		if err != nil {
			b.Fatal(err)
		}
		if st := waitTerminalB(b, q); st != StateDone {
			b.Fatalf("seed query %d state = %s", i, st)
		}
	}
	seed.Close()

	posted := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := trackingSim(n)
		iterCfg := durableConfig(b, n, dir, m)
		iterCfg.Answers = nil
		svc, err := New(iterCfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := svc.Recover(); err != nil {
			b.Fatal(err)
		}
		for _, sn := range svc.List() {
			q, _ := svc.Get(sn.ID)
			if st := waitTerminalB(b, q); st != StateDone {
				b.Fatalf("recovered query %s state = %s", sn.ID, st)
			}
		}
		posted += len(m.PostedHITs())
		svc.Close()
	}
	b.StopTimer()
	if posted != 0 {
		b.Fatalf("recovery posted %d HITs, want 0 (pure replay)", posted)
	}
	b.ReportMetric(float64(posted)/float64(b.N), "posted/op")
	b.ReportMetric(queries, "queries/op")
}

// waitTerminalB follows the query to a terminal state in a benchmark.
func waitTerminalB(b *testing.B, q *Query) State {
	for {
		sn := q.Snapshot()
		if sn.State.Terminal() {
			return sn.State
		}
		time.Sleep(200 * time.Microsecond)
	}
}
