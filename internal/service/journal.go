// Durable queries: the service-level manifest + WAL pair behind
// qurkd's -journal-dir, and the restart recovery that resumes them.
//
// Every submitted query persists two files in the journal directory:
//
//	<id>.manifest.json  who/what: tenant, query text, resolved options,
//	                    backend, budget, and an options fingerprint
//	<id>.qjl            the wal.Journal of the run itself: HIT-group
//	                    intents/results, breaker checkpoints, budget
//	                    charge records, and the terminal seal
//
// The manifest is what Recover needs before it can rebuild an engine
// (the WAL's own meta only carries the query text and fingerprint);
// the WAL is what makes the rebuilt run bit-identical. Charge records
// (wal.LogCharge) make tenant accounting exactly-once across crashes:
// the gate journals every ledger charge before the group posts, the
// recovery replays them into a fresh ledger, and the resumed run pops
// them (wal.TakeCharge) instead of charging again.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"qurk/internal/core"
	"qurk/internal/wal"
)

// manifest is the service-level record of one durable query.
type manifest struct {
	ID            string       `json:"id"`
	Tenant        string       `json:"tenant"`
	Backend       string       `json:"backend"`
	Query         string       `json:"query"`
	BudgetDollars float64      `json:"budget_dollars"`
	Options       core.Options `json:"options"`
	Fingerprint   uint64       `json:"fingerprint"`
}

// sealCancelled is the seal reason for queries the user explicitly
// cancelled; unlike "interrupted" seals, Recover does not resume them.
const sealCancelled = "cancelled"

// serviceFingerprint hashes what must match for a journal to be safe
// to resume: the query text, the fully resolved options (after
// fillDefaults — what the engine actually ran with), and the backend
// name. Unlike the CLI facade's fingerprint it never hashes Go types,
// so it is stable across process restarts and rebuilds.
func serviceFingerprint(src string, opts core.Options, backend string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, src)
	h.Write([]byte{0})
	ob, _ := json.Marshal(opts)
	h.Write(ob)
	h.Write([]byte{0})
	io.WriteString(h, backend)
	return h.Sum64()
}

// manifestPath and journalPath name a query's two durable files.
func (s *Service) manifestPath(id string) string {
	return filepath.Join(s.cfg.JournalDir, id+".manifest.json")
}

func (s *Service) journalPath(id string) string {
	return filepath.Join(s.cfg.JournalDir, id+".qjl")
}

// writeManifest persists the manifest atomically (tmp + rename), so a
// crash mid-write never leaves a torn manifest for Recover to trip on.
func (s *Service) writeManifest(m *manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encoding manifest %s: %w", m.ID, err)
	}
	path := s.manifestPath(m.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("service: writing manifest %s: %w", m.ID, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("service: committing manifest %s: %w", m.ID, err)
	}
	return nil
}

// readManifest loads one manifest file.
func readManifest(path string) (*manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("service: decoding %s: %w", path, err)
	}
	if m.ID == "" || m.Tenant == "" || m.Query == "" {
		return nil, fmt.Errorf("service: manifest %s is missing id, tenant, or query", path)
	}
	return &m, nil
}

// attachJournal makes one admitted submission durable: it writes the
// manifest, creates the WAL, and rewires the engine so every HIT
// group and budget charge flows through the journal. Returns the open
// journal the query must seal at its terminal transition.
func (s *Service) attachJournal(id, backend string, tenant *Tenant, src string, gate *BudgetGate, eng *core.Engine) (*wal.Journal, error) {
	fp := serviceFingerprint(src, eng.Options, backend)
	m := &manifest{
		ID:            id,
		Tenant:        tenant.ID,
		Backend:       backend,
		Query:         src,
		BudgetDollars: tenant.BudgetDollars,
		Options:       eng.Options,
		Fingerprint:   fp,
	}
	if err := s.writeManifest(m); err != nil {
		return nil, err
	}
	j, err := wal.Create(s.journalPath(id), wal.Meta{Query: src, Backend: backend, Fingerprint: fp})
	if err != nil {
		return nil, fmt.Errorf("service: creating journal for %s: %w", id, err)
	}
	s.wireJournal(j, gate, eng)
	return j, nil
}

// wireJournal routes an engine's marketplace traffic through the
// journal: replay-or-post via wal.Market, breaker checkpoints via
// eng.Journal, and crash-safe budget charges via the gate.
func (s *Service) wireJournal(j *wal.Journal, gate *BudgetGate, eng *core.Engine) {
	gate.Journal = j
	eng.Market = wal.NewMarket(gate, j)
	eng.Journal = j
}

// Recover scans the journal directory and re-admits every durable
// query found there: unfinished (and deadline-interrupted) queries
// resume running under their original tenants and IDs, completed ones
// replay for free so their rows are servable again, and explicitly
// cancelled ones are registered terminal. Tenant ledgers are rebuilt
// from the journals' charge records, so a group charged before the
// crash is never charged again. Queries whose journal does not match
// their manifest (fingerprint or query-text drift) are registered as
// failed — the daemon keeps serving everyone else.
//
// Callers that configure JournalDir must call Recover exactly once,
// after New; the service reports not-ready until it completes.
func (s *Service) Recover() error {
	defer func() {
		s.mu.Lock()
		s.recovering = false
		s.mu.Unlock()
	}()
	if s.cfg.JournalDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.JournalDir, 0o755); err != nil {
		return fmt.Errorf("service: journal dir: %w", err)
	}
	entries, err := os.ReadDir(s.cfg.JournalDir)
	if err != nil {
		return fmt.Errorf("service: scanning journal dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".manifest.json") {
			names = append(names, e.Name())
		}
	}
	// Submission order: IDs are zero-padded (q0001…), so name order is
	// submission order, which keeps recovered ID assignment stable.
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(s.cfg.JournalDir, name)
		m, err := readManifest(path)
		if err != nil {
			id := strings.TrimSuffix(name, ".manifest.json")
			s.registerTerminal(&manifest{ID: id, Tenant: "?", Query: "?"}, StateFailed,
				fmt.Errorf("service: unreadable manifest: %w", err))
			continue
		}
		s.recoverOne(m)
	}
	return nil
}

// recoverOne rebuilds and restarts a single journaled query.
func (s *Service) recoverOne(m *manifest) {
	tenant := s.tenants.Ensure(m.Tenant, m.BudgetDollars)
	mux, ok := s.muxes[m.Backend]
	if !ok {
		s.registerTerminal(m, StateFailed,
			fmt.Errorf("service: backend %q is no longer configured", m.Backend))
		return
	}

	jpath := s.journalPath(m.ID)
	var j *wal.Journal
	var err error
	if _, statErr := os.Stat(jpath); errors.Is(statErr, fs.ErrNotExist) {
		// Crashed between manifest commit and journal creation: nothing
		// was posted or charged, so the query starts from scratch.
		j, err = wal.Create(jpath, wal.Meta{Query: m.Query, Backend: m.Backend, Fingerprint: m.Fingerprint})
	} else {
		j, err = wal.Open(jpath)
	}
	if err != nil {
		s.registerTerminal(m, StateFailed, fmt.Errorf("service: opening journal: %w", err))
		return
	}

	// The resume guard: manifest, journal meta, and a recomputation
	// from the manifest's stored options must all agree before any of
	// the journal's results are trusted for this query text.
	gate := &BudgetGate{Tenant: tenant, Label: m.ID, Inner: mux}
	eng := s.newEngine(gate, m.Options)
	fp := serviceFingerprint(m.Query, eng.Options, m.Backend)
	jm := j.Meta()
	if fp != m.Fingerprint || jm.Fingerprint != m.Fingerprint || jm.Query != m.Query {
		_ = j.Close()
		s.registerTerminal(m, StateFailed, fmt.Errorf(
			"service: journal/manifest fingerprint mismatch for %s (manifest %016x, journal %016x, recomputed %016x): refusing to resume",
			m.ID, m.Fingerprint, jm.Fingerprint, fp))
		return
	}
	if sealed, reason := j.Sealed(); sealed && reason == sealCancelled {
		_ = j.Close()
		s.registerTerminal(m, StateCancelled, errors.New("service: cancelled before restart"))
		return
	}

	// Exactly-once accounting: the fresh boot's in-memory ledger learns
	// every charge the journal recorded; the resumed run pops these
	// (TakeCharge) instead of charging again.
	for _, c := range j.Charges() {
		tenant.Ledger.Add(m.ID, c.HITs, c.Assignments)
	}

	s.wireJournal(j, gate, eng)
	ctx, q := s.register(m.ID, tenant.ID, m.Backend, m.Query, eng, j)
	if q == nil {
		return // service shut down mid-recovery
	}
	s.armDeadline(ctx, q, eng.Options.DeadlineHours)
	go q.run(ctx)
}

// registerTerminal records a query that recovery refused to (or need
// not) restart, so its fate is visible in the API rather than
// silently dropped.
func (s *Service) registerTerminal(m *manifest, st State, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noteID(m.ID)
	q := &Query{
		ID:       m.ID,
		TenantID: m.Tenant,
		Backend:  m.Backend,
		Src:      m.Query,
		svc:      s,
		state:    st,
		err:      err,
		wake:     make(chan struct{}),
	}
	q.cancelCause = func(error) {}
	s.queries[m.ID] = q
	s.order = append(s.order, m.ID)
}

// noteID advances the ID counter past a recovered ID so new
// submissions never collide with resumed queries. Callers hold s.mu.
func (s *Service) noteID(id string) {
	if n, err := strconv.Atoi(strings.TrimPrefix(id, "q")); err == nil && n > s.nextID {
		s.nextID = n
	}
}

// register installs a runnable query record under s.mu and returns
// its run context; nil if the service is closed.
func (s *Service) register(id, tenantID, backend, src string, eng *core.Engine, j *wal.Journal) (context.Context, *Query) {
	ctx, cancel := context.WithCancelCause(context.Background())
	q := &Query{
		ID:          id,
		TenantID:    tenantID,
		Backend:     backend,
		Src:         src,
		svc:         s,
		engine:      eng,
		cancelCause: cancel,
		state:       StateQueued,
		wake:        make(chan struct{}),
		journal:     j,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		cancel(errShutdown)
		if j != nil {
			_ = j.Close()
		}
		return nil, nil
	}
	s.noteID(id)
	s.queries[id] = q
	s.order = append(s.order, id)
	s.wg.Add(1)
	return ctx, q
}

// armDeadline starts the per-query wall-clock watchdog: when the
// service clock has slept DeadlineHours, the query alone is failed
// with ErrDeadlineExceeded (its journal seals "interrupted", so it
// resumes — with a fresh deadline window — on the next boot).
func (s *Service) armDeadline(ctx context.Context, q *Query, hours float64) {
	if hours <= 0 {
		return
	}
	d := time.Duration(hours * float64(time.Hour))
	go func() {
		fired := make(chan struct{})
		go func() {
			s.clock.Sleep(d)
			close(fired)
		}()
		select {
		case <-fired:
			q.cancelCause(fmt.Errorf("%w after %.2fh", ErrDeadlineExceeded, d.Hours()))
		case <-ctx.Done():
		}
	}()
}

// sealJournal writes the query's terminal seal and releases the
// journal file. Completion seals SealComplete; an explicit user
// cancel seals "cancelled" (not resumed); every other terminal —
// failure, deadline, shutdown — seals "interrupted: …" and stays
// resumable.
func (q *Query) sealJournal(st State, cause error) {
	if q.journal == nil {
		return
	}
	var reason string
	switch {
	case st == StateDone:
		reason = wal.SealComplete
	case st == StateCancelled && errors.Is(cause, errUserCancelled):
		reason = sealCancelled
	case cause != nil:
		reason = "interrupted: " + cause.Error()
	default:
		reason = "interrupted"
	}
	_ = q.journal.Seal(reason)
	_ = q.journal.Close()
}
