// qurkd's HTTP/JSON API.
//
//	POST   /v1/queries            submit; returns the query ID
//	GET    /v1/queries            list query snapshots
//	GET    /v1/queries/{id}       one query's status
//	GET    /v1/queries/{id}/rows  stream result rows as NDJSON
//	DELETE /v1/queries/{id}       cancel
//	GET    /v1/tenants            list tenants
//	GET    /v1/tenants/{id}       one tenant's budget and spend
//	GET    /v1/store              shared answer-store statistics
//	GET    /v1/status             circuit/recovery health detail
//	GET    /healthz               liveness (process is up)
//	GET    /readyz                readiness (recovered, circuits closed)
//
// The rows stream is a chunked response that follows a running query
// live: each line is one result row, and the final line reports the
// terminal state — so a client sees rows as crowd work completes, not
// when the query finishes.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"qurk/internal/answerstore"
	"qurk/internal/core"
	"qurk/internal/join"
	"qurk/internal/relation"
)

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	// Liveness and readiness are deliberately split: a daemon replaying
	// journals or riding out a marketplace outage is alive (do not
	// restart it — that would only repeat the replay) but should not
	// receive new traffic yet.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if ok, reason := s.Ready(); !ok {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not-ready", "reason": reason})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Status())
	})
	mux.HandleFunc("POST /v1/queries", s.handleSubmit)
	mux.HandleFunc("GET /v1/queries", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"queries": s.List()})
	})
	mux.HandleFunc("GET /v1/queries/{id}", s.withQuery(func(w http.ResponseWriter, r *http.Request, q *Query) {
		writeJSON(w, http.StatusOK, q.Snapshot())
	}))
	mux.HandleFunc("DELETE /v1/queries/{id}", s.withQuery(func(w http.ResponseWriter, r *http.Request, q *Query) {
		q.Cancel()
		writeJSON(w, http.StatusOK, q.Snapshot())
	}))
	mux.HandleFunc("GET /v1/queries/{id}/rows", s.withQuery(s.handleRows))
	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		var out []TenantSnapshot
		for _, t := range s.tenants.List() {
			if sn, ok := s.TenantSnapshot(t.ID); ok {
				out = append(out, sn)
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"tenants": out})
	})
	mux.HandleFunc("GET /v1/tenants/{id}", func(w http.ResponseWriter, r *http.Request) {
		sn, ok := s.TenantSnapshot(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown tenant %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, sn)
	})
	mux.HandleFunc("GET /v1/store", s.handleStore)
	return mux
}

// submitBody is the POST /v1/queries payload. Options fields are
// pointers so "absent" and "zero" are distinguishable; absent fields
// keep the service defaults.
type submitBody struct {
	Tenant  string      `json:"tenant"`
	Query   string      `json:"query"`
	Backend string      `json:"backend,omitempty"`
	Options *apiOptions `json:"options,omitempty"`
}

// apiOptions is the externally settable subset of core.Options.
type apiOptions struct {
	Assignments *int    `json:"assignments,omitempty"`
	Seed        *int64  `json:"seed,omitempty"`
	Combiner    *string `json:"combiner,omitempty"`
	Sort        *string `json:"sort,omitempty"`
	Join        *string `json:"join,omitempty"`
	FilterBatch *int    `json:"filter_batch,omitempty"`
	JoinBatch   *int    `json:"join_batch,omitempty"`
	GridRows    *int    `json:"grid_rows,omitempty"`
	GridCols    *int    `json:"grid_cols,omitempty"`
}

// apply overlays the set fields onto a copy of the defaults.
func (a *apiOptions) apply(defaults core.Options) (core.Options, error) {
	o := defaults
	if a == nil {
		return o, nil
	}
	if a.Assignments != nil {
		o.Assignments = *a.Assignments
	}
	if a.Seed != nil {
		o.Seed = *a.Seed
	}
	if a.Combiner != nil {
		o.Combiner = *a.Combiner
	}
	if a.Sort != nil {
		switch *a.Sort {
		case "compare":
			o.SortMethod = core.SortCompare
		case "rate":
			o.SortMethod = core.SortRate
		case "hybrid":
			o.SortMethod = core.SortHybrid
		default:
			return o, fmt.Errorf("unknown sort method %q (want compare, rate, or hybrid)", *a.Sort)
		}
	}
	if a.Join != nil {
		switch *a.Join {
		case "simple":
			o.JoinAlgorithm = join.Simple
		case "naive":
			o.JoinAlgorithm = join.Naive
		case "smart":
			o.JoinAlgorithm = join.Smart
		default:
			return o, fmt.Errorf("unknown join interface %q (want simple, naive, or smart)", *a.Join)
		}
	}
	if a.FilterBatch != nil {
		o.FilterBatch = *a.FilterBatch
	}
	if a.JoinBatch != nil {
		o.JoinBatch = *a.JoinBatch
	}
	if a.GridRows != nil {
		o.GridRows = *a.GridRows
	}
	if a.GridCols != nil {
		o.GridCols = *a.GridCols
	}
	return o, nil
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var body submitBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	opts, err := body.Options.apply(s.cfg.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q, err := s.Submit(SubmitRequest{
		Tenant:  body.Tenant,
		Query:   body.Query,
		Backend: body.Backend,
		Options: &opts,
	})
	switch {
	case errors.Is(err, ErrBudgetExceeded):
		writeError(w, http.StatusPaymentRequired, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, q.Snapshot())
	}
}

// rowLine is one NDJSON line of the rows stream; exactly one of
// Values (a row) or State (the trailing status line) is set.
type rowLine struct {
	Row    int               `json:"row,omitempty"`
	Values map[string]string `json:"values,omitempty"`
	State  State             `json:"state,omitempty"`
	Error  string            `json:"error,omitempty"`
	Rows   int               `json:"rows,omitempty"`
}

// handleRows streams the query's rows live as chunked NDJSON.
func (s *Service) handleRows(w http.ResponseWriter, r *http.Request, q *Query) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	n := 0
	st, err := q.StreamRows(r.Context(), 0, func(i int, t relation.Tuple) error {
		n++
		line := rowLine{Row: i, Values: map[string]string{}}
		sch := t.Schema()
		for c := 0; c < t.Len(); c++ {
			name := fmt.Sprintf("c%d", c)
			if sch != nil && c < sch.Len() {
				name = sch.Column(c).Name
			}
			line.Values[name] = t.At(c).String()
		}
		if encErr := enc.Encode(line); encErr != nil {
			return encErr
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		// The client went away mid-stream; nothing more to write.
		return
	}
	final := rowLine{State: st, Rows: n}
	if sn := q.Snapshot(); sn.Error != "" {
		final.Error = sn.Error
	}
	_ = enc.Encode(final)
}

// handleStore reports the shared answer store's statistics.
func (s *Service) handleStore(w http.ResponseWriter, r *http.Request) {
	type reply struct {
		Enabled bool              `json:"enabled"`
		Stats   answerstore.Stats `json:"stats"`
	}
	st, ok := s.cfg.Answers.(interface{ Stats() answerstore.Stats })
	if s.cfg.Answers == nil || !ok {
		writeJSON(w, http.StatusOK, reply{Enabled: s.cfg.Answers != nil})
		return
	}
	writeJSON(w, http.StatusOK, reply{Enabled: true, Stats: st.Stats()})
}

// withQuery resolves {id} or 404s.
func (s *Service) withQuery(h func(http.ResponseWriter, *http.Request, *Query)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q, ok := s.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown query %q", r.PathValue("id")))
			return
		}
		h(w, r, q)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
