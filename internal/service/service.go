// Package service is qurkd's multi-tenant query service: many
// concurrent queries from many tenants over shared crowd marketplaces
// and a shared cross-query answer store.
//
// The pieces, composed per the paper's architecture (Fig. 1) scaled to
// a long-running process:
//
//   - One Mux per backend: a single dispatch loop all queries' HIT
//     chunks post through, so the process maintains one poster loop
//     per marketplace rather than one per query.
//   - One Tenant per paying principal, with a dollar budget enforced
//     through a cost.Ledger: queries are admitted only when the
//     optimizer's estimate fits the remaining budget, and every posted
//     group is charged before it reaches the marketplace (BudgetGate),
//     cutting a query off mid-run when the money runs out.
//   - One shared core.AnswerStore (internal/answerstore) across every
//     engine the service builds: a question some earlier query already
//     paid for is served from the store and never posted again.
//
// Each submitted query gets its own engine — fresh ledger, cache, and
// options — sharing the service-wide catalog, task library, answer
// store, and backend mux. Results stream: rows are appended to the
// query as the executor yields batches, and any number of subscribers
// (HTTP chunked responses) follow along.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"qurk/internal/circuit"
	"qurk/internal/core"
	"qurk/internal/cost"
	"qurk/internal/crowd"
	"qurk/internal/exec"
	"qurk/internal/plan"
	"qurk/internal/query"
	"qurk/internal/relation"
	"qurk/internal/wal"
)

// Config wires a Service.
type Config struct {
	// Backends maps backend names to marketplaces; each is wrapped in
	// its own Mux. Required: at least one.
	Backends map[string]crowd.Marketplace
	// DefaultBackend names the backend used when a submission does not
	// pick one; defaults to the sole backend when there is exactly one.
	DefaultBackend string
	// Catalog and Library are shared by every query's engine.
	Catalog *relation.Catalog
	Library *core.Library
	// Answers is the shared cross-query answer store (nil disables
	// reuse).
	Answers core.AnswerStore
	// Stats is the shared observed-statistics store: every tenant's
	// runs feed their measured selectivities, pass fractions, and group
	// sizes into it, and every submission's admission-time plan is
	// seeded from that history (nil disables the feedback loop).
	Stats core.ObservedStats
	// Options are the engine defaults each submission may override.
	Options core.Options
	// Tenants is the tenant directory; nil creates an empty one.
	Tenants *Registry
	// DefaultBudgetDollars seeds tenants auto-created at submission
	// time (0 = unlimited).
	DefaultBudgetDollars float64
	// JournalDir, when set, makes every query durable by default: a
	// manifest + WAL pair per query (see journal.go), resumed by
	// Recover on the next boot. Callers that set it MUST call Recover
	// once after New — the service reports not-ready until then.
	JournalDir string
	// Clock drives per-query deadlines (Options.DeadlineHours) and is
	// shared with the circuit breakers; nil means wall time.
	Clock Clock
	// Circuit, when non-nil, wraps every backend in a circuit breaker
	// beneath its Mux: a marketplace outage parks posting calls (the
	// service reports degraded) instead of failing queries. The
	// config's Clock field is overridden by the service clock.
	Circuit *circuit.Config
}

// Clock abstracts wall time for deadline and breaker cooldowns so
// tests can drive both deterministically.
type Clock = circuit.Clock

// wallClock is the production Clock.
type wallClock struct{}

// Now implements Clock.
func (wallClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (wallClock) Sleep(d time.Duration) { time.Sleep(d) }

// ErrDeadlineExceeded is the failure cause of a query that outlived
// its Options.DeadlineHours wall-clock budget. Only the overdue query
// fails; its journal seals "interrupted" and stays resumable.
var ErrDeadlineExceeded = errors.New("service: query deadline exceeded")

// errUserCancelled marks an explicit Cancel (API DELETE); unlike a
// shutdown it seals the journal as cancelled, which Recover treats as
// terminal rather than resumable.
var errUserCancelled = errors.New("service: cancelled by request")

// errShutdown marks queries cancelled by Service.Close; their
// journals seal "interrupted: …" so the next boot resumes them.
var errShutdown = errors.New("service: shutting down")

// State is a query's lifecycle phase.
type State string

// Query lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Query is one submitted query's full lifecycle record.
type Query struct {
	// ID is the service-assigned handle ("q0001").
	ID string
	// TenantID, Backend, and Src echo the submission.
	TenantID string
	Backend  string
	Src      string

	svc         *Service
	engine      *core.Engine
	cancelCause context.CancelCauseFunc
	// journal is non-nil for durable queries; sealed at the terminal
	// transition.
	journal *wal.Journal

	mu     sync.Mutex
	state  State
	err    error
	schema *relation.Schema
	rows   []relation.Tuple
	stats  *exec.Stats
	// wake is closed and replaced whenever rows or state change, so
	// row subscribers can block without polling.
	wake chan struct{}
}

// Snapshot is a query's JSON-ready status.
type Snapshot struct {
	ID      string   `json:"id"`
	Tenant  string   `json:"tenant"`
	Backend string   `json:"backend"`
	Query   string   `json:"query"`
	State   State    `json:"state"`
	Error   string   `json:"error,omitempty"`
	Columns []string `json:"columns,omitempty"`
	Rows    int      `json:"rows"`
	// HITs/Assignments/Reused/Dollars summarize crowd spending so far;
	// Reused counts questions served from the shared answer store.
	HITs          int     `json:"hits"`
	Reused        int     `json:"reused"`
	Dollars       float64 `json:"dollars"`
	MakespanHours float64 `json:"makespan_hours,omitempty"`
}

// Service is the multi-tenant query service.
type Service struct {
	cfg      Config
	muxes    map[string]*Mux
	breakers map[string]*circuit.Breaker
	tenants  *Registry
	clock    Clock

	mu         sync.Mutex
	queries    map[string]*Query
	order      []string
	nextID     int
	closed     bool
	recovering bool
	wg         sync.WaitGroup
}

// New builds a Service; it validates that at least one backend exists
// and resolves the default backend.
func New(cfg Config) (*Service, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("service: no backends configured")
	}
	if cfg.DefaultBackend == "" {
		if len(cfg.Backends) == 1 {
			for name := range cfg.Backends {
				cfg.DefaultBackend = name
			}
		} else {
			return nil, errors.New("service: multiple backends need an explicit DefaultBackend")
		}
	}
	if _, ok := cfg.Backends[cfg.DefaultBackend]; !ok {
		return nil, fmt.Errorf("service: default backend %q is not configured", cfg.DefaultBackend)
	}
	if cfg.Catalog == nil {
		cfg.Catalog = relation.NewCatalog()
	}
	if cfg.Library == nil {
		cfg.Library = core.NewLibrary()
	}
	if cfg.Tenants == nil {
		cfg.Tenants = NewRegistry()
	}
	if cfg.Clock == nil {
		cfg.Clock = wallClock{}
	}
	s := &Service{
		cfg:      cfg,
		muxes:    map[string]*Mux{},
		breakers: map[string]*circuit.Breaker{},
		tenants:  cfg.Tenants,
		clock:    cfg.Clock,
		queries:  map[string]*Query{},
		// Not-ready from the first instant when journaling is on: the
		// flag clears when Recover finishes, so a load balancer never
		// routes submits to a daemon that has not replayed its journals
		// yet (even before Recover is called).
		recovering: cfg.JournalDir != "",
	}
	for name, m := range cfg.Backends {
		if cfg.Circuit != nil {
			bc := *cfg.Circuit
			bc.Clock = s.clock
			b := circuit.New(m, bc)
			s.breakers[name] = b
			m = b
		}
		s.muxes[name] = NewMux(m)
	}
	return s, nil
}

// Ready reports whether the service should receive traffic, with a
// human reason when it should not: journal recovery is still
// replaying, or a backend's circuit breaker is not closed.
func (s *Service) Ready() (bool, string) {
	s.mu.Lock()
	rec := s.recovering
	s.mu.Unlock()
	if rec {
		return false, "recovering journaled queries"
	}
	for _, name := range s.backendNames() {
		if b := s.breakers[name]; b != nil {
			if st := b.State(); st != circuit.Closed {
				return false, fmt.Sprintf("backend %s circuit %s", name, st)
			}
		}
	}
	return true, ""
}

// backendNames lists backends sorted, for stable status output.
func (s *Service) backendNames() []string {
	names := make([]string, 0, len(s.muxes))
	for name := range s.muxes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BackendStatus is one backend's health in the status report.
type BackendStatus struct {
	// Circuit is the breaker state ("closed"/"open"/"half-open"), or
	// "disabled" when the service runs without breakers.
	Circuit string `json:"circuit"`
	// Parked counts posting calls waiting out an open circuit.
	Parked int `json:"parked"`
	// Groups and HITs are the mux's admitted-work counters.
	Groups int `json:"groups"`
	HITs   int `json:"hits"`
}

// Status is the service's operational snapshot (GET /v1/status).
type Status struct {
	// State is "ok", "degraded" (some circuit not closed), or
	// "recovering" (journal replay still running).
	State      string                   `json:"state"`
	Recovering bool                     `json:"recovering"`
	Backends   map[string]BackendStatus `json:"backends"`
	Queries    int                      `json:"queries"`
}

// Status reports service health: recovery progress and per-backend
// circuit state. Degraded means at least one breaker is not closed —
// queries are parked, not failing.
func (s *Service) Status() Status {
	s.mu.Lock()
	st := Status{
		Recovering: s.recovering,
		Backends:   map[string]BackendStatus{},
		Queries:    len(s.queries),
	}
	s.mu.Unlock()
	degraded := false
	for _, name := range s.backendNames() {
		bs := BackendStatus{Circuit: "disabled"}
		bs.Groups, bs.HITs = s.muxes[name].Stats()
		if b := s.breakers[name]; b != nil {
			cs := b.State()
			bs.Circuit = cs.String()
			bs.Parked = b.Parked()
			if cs != circuit.Closed {
				degraded = true
			}
		}
		st.Backends[name] = bs
	}
	switch {
	case st.Recovering:
		st.State = "recovering"
	case degraded:
		st.State = "degraded"
	default:
		st.State = "ok"
	}
	return st
}

// Tenants exposes the tenant directory.
func (s *Service) Tenants() *Registry { return s.tenants }

// MuxStats reports per-backend admitted groups and HITs.
func (s *Service) MuxStats() map[string][2]int {
	out := map[string][2]int{}
	for name, m := range s.muxes {
		g, h := m.Stats()
		out[name] = [2]int{g, h}
	}
	return out
}

// SubmitRequest is one query submission.
type SubmitRequest struct {
	// Tenant is required; unknown tenants are created with the
	// service's default budget.
	Tenant string
	// Query is the query text (required).
	Query string
	// Backend picks a configured marketplace ("" = default).
	Backend string
	// Options overrides the service defaults for this query (nil =
	// defaults).
	Options *core.Options
}

// Submit admits and starts one query, returning its handle
// immediately; execution proceeds in the background. Admission fails
// with ErrBudgetExceeded when the optimizer's cost estimate does not
// fit the tenant's remaining budget.
func (s *Service) Submit(req SubmitRequest) (*Query, error) {
	if req.Tenant == "" {
		return nil, errors.New("service: submission needs a tenant")
	}
	if req.Query == "" {
		return nil, errors.New("service: submission needs a query")
	}
	backend := req.Backend
	if backend == "" {
		backend = s.cfg.DefaultBackend
	}
	mux, ok := s.muxes[backend]
	if !ok {
		return nil, fmt.Errorf("service: unknown backend %q", backend)
	}
	opts := s.cfg.Options
	if req.Options != nil {
		opts = *req.Options
	}
	tenant := s.tenants.Ensure(req.Tenant, s.cfg.DefaultBudgetDollars)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("service: shut down")
	}
	s.nextID++
	id := fmt.Sprintf("q%04d", s.nextID)
	s.mu.Unlock()

	gate := &BudgetGate{Tenant: tenant, Label: id, Inner: mux}
	eng := s.newEngine(gate, opts)

	// Admission control: the query must parse, plan, and fit the
	// tenant's remaining budget by the optimizer's estimate.
	if err := s.admit(eng, tenant, req.Query); err != nil {
		return nil, err
	}

	// Durable by default when a journal directory is configured: the
	// manifest + WAL pair commits before the query starts, so a crash
	// at ANY later point leaves enough on disk for Recover to resume.
	var j *wal.Journal
	if s.cfg.JournalDir != "" {
		var err error
		if j, err = s.attachJournal(id, backend, tenant, req.Query, gate, eng); err != nil {
			return nil, err
		}
	}

	ctx, q := s.register(id, tenant.ID, backend, req.Query, eng, j)
	if q == nil {
		return nil, errors.New("service: shut down")
	}
	s.armDeadline(ctx, q, eng.Options.DeadlineHours)
	go q.run(ctx)
	return q, nil
}

// newEngine builds a per-query engine over the budget gate, sharing
// the service-wide catalog, library, answer store, and stats store.
func (s *Service) newEngine(gate *BudgetGate, opts core.Options) *core.Engine {
	eng := core.NewEngine(gate, opts)
	eng.Catalog = s.cfg.Catalog
	eng.Library = s.cfg.Library
	eng.Answers = s.cfg.Answers
	eng.ObStats = s.cfg.Stats
	return eng
}

// admit parses and cost-estimates the query against the tenant's
// remaining budget. Parse and plan errors reject the submission here,
// synchronously, rather than as a failed background query.
func (s *Service) admit(eng *core.Engine, tenant *Tenant, src string) error {
	stmt, err := query.ParseQuery(src)
	if err != nil {
		return err
	}
	node, err := plan.Build(stmt, eng.Library)
	if err != nil {
		return err
	}
	po := plan.OptimizeOptionsFrom(eng.Options, 0)
	if eng.ObStats != nil {
		// Seed the admission-time plan from observed history: a second
		// submission of a workload the store has seen picks the better
		// interface (and a truer budget estimate) before running.
		po.Stats = eng.ObStats
	}
	cp, err := plan.Optimize(node, eng.Catalog, po)
	if err != nil {
		return err
	}
	return tenant.admit(cp.TotalDollars)
}

// run executes the query, streaming rows into the record, then seals
// the journal according to the terminal state.
func (q *Query) run(ctx context.Context) {
	defer q.svc.wg.Done()
	q.transition(StateRunning, nil, nil)
	out, st, err := exec.RunQueryStreamContext(ctx, q.engine, q.Src, func(ts []relation.Tuple, _ float64) error {
		q.appendRows(ts)
		return nil
	})
	var final State
	switch {
	case err == nil:
		q.mu.Lock()
		if out != nil {
			q.schema = out.Schema()
		}
		q.mu.Unlock()
		final = StateDone
		q.transition(StateDone, st, nil)
	case ctx.Err() != nil:
		cause := context.Cause(ctx)
		if errors.Is(cause, ErrDeadlineExceeded) {
			// A blown deadline is a failure of this one query, not a
			// cancellation: the journal seals "interrupted" and Recover
			// resumes it on the next boot.
			final = StateFailed
			q.transition(StateFailed, st, cause)
		} else {
			final = StateCancelled
			q.transition(StateCancelled, st, cause)
		}
		err = cause
	default:
		final = StateFailed
		q.transition(StateFailed, st, err)
	}
	q.sealJournal(final, err)
}

func (q *Query) appendRows(ts []relation.Tuple) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.rows = append(q.rows, ts...)
	if q.schema == nil && len(ts) > 0 {
		q.schema = ts[0].Schema()
	}
	q.broadcast()
}

// transition moves the query to a new state unless it is already
// terminal (a cancel that races completion keeps the first outcome).
func (q *Query) transition(st State, stats *exec.Stats, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.state.Terminal() {
		return
	}
	q.state = st
	if stats != nil {
		q.stats = stats
	}
	q.err = err
	q.broadcast()
}

// broadcast wakes row subscribers; callers hold q.mu.
func (q *Query) broadcast() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// Cancel stops the query cooperatively; in-flight chunks complete but
// are no longer waited for. A user cancel is terminal: the journal is
// sealed "cancelled" and Recover will not resume it.
func (q *Query) Cancel() { q.cancelCause(errUserCancelled) }

// Snapshot returns the query's JSON-ready status.
func (q *Query) Snapshot() Snapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	sn := Snapshot{
		ID:      q.ID,
		Tenant:  q.TenantID,
		Backend: q.Backend,
		Query:   q.Src,
		State:   q.state,
		Rows:    len(q.rows),
	}
	if q.err != nil {
		sn.Error = q.err.Error()
	}
	if q.schema != nil {
		for i := 0; i < q.schema.Len(); i++ {
			sn.Columns = append(sn.Columns, q.schema.Column(i).Name)
		}
	}
	if q.stats != nil {
		sn.HITs = q.stats.TotalHITs()
		sn.Reused = q.stats.TotalReused()
		sn.MakespanHours = q.stats.PipelineMakespanHours
	}
	sn.Dollars = q.ledgerDollars()
	return sn
}

// ledgerDollars reads the query's own entries out of the tenant
// ledger; callers hold q.mu (the ledger has its own lock).
func (q *Query) ledgerDollars() float64 {
	t := q.svc.tenants.Get(q.TenantID)
	if t == nil {
		return 0
	}
	var d float64
	for _, e := range t.Ledger.Entries() {
		if e.Label == q.ID {
			d += e.Dollars()
		}
	}
	return d
}

// Stats returns the run's exec stats once terminal (nil before).
func (q *Query) Stats() *exec.Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// StreamRows delivers result rows to fn starting at index from,
// following the query live until it reaches a terminal state, ctx
// ends, or fn errors. It returns the final state.
func (q *Query) StreamRows(ctx context.Context, from int, fn func(i int, t relation.Tuple) error) (State, error) {
	i := from
	if i < 0 {
		i = 0
	}
	for {
		q.mu.Lock()
		rows := q.rows[min(i, len(q.rows)):]
		st := q.state
		wake := q.wake
		q.mu.Unlock()
		for _, t := range rows {
			if err := fn(i, t); err != nil {
				return st, err
			}
			i++
		}
		if st.Terminal() {
			// Drain rows that landed between the snapshot and the
			// terminal transition (broadcast ordering makes this rare).
			q.mu.Lock()
			tail := q.rows[min(i, len(q.rows)):]
			q.mu.Unlock()
			for _, t := range tail {
				if err := fn(i, t); err != nil {
					return st, err
				}
				i++
			}
			return st, nil
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Get returns a query by ID.
func (s *Service) Get(id string) (*Query, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queries[id]
	return q, ok
}

// List returns snapshots of every query in submission order.
func (s *Service) List() []Snapshot {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]Snapshot, 0, len(ids))
	for _, id := range ids {
		if q, ok := s.Get(id); ok {
			out = append(out, q.Snapshot())
		}
	}
	return out
}

// TenantSnapshot is a tenant's JSON-ready status.
type TenantSnapshot struct {
	ID string `json:"id"`
	// BudgetDollars 0 means unlimited.
	BudgetDollars    float64      `json:"budget_dollars"`
	SpentDollars     float64      `json:"spent_dollars"`
	RemainingDollars float64      `json:"remaining_dollars"`
	HITs             int          `json:"hits"`
	Entries          []cost.Entry `json:"entries,omitempty"`
	Queries          []string     `json:"queries,omitempty"`
}

// TenantSnapshot builds one tenant's status, or ok=false.
func (s *Service) TenantSnapshot(id string) (TenantSnapshot, bool) {
	t := s.tenants.Get(id)
	if t == nil {
		return TenantSnapshot{}, false
	}
	sn := TenantSnapshot{
		ID:               t.ID,
		BudgetDollars:    t.BudgetDollars,
		SpentDollars:     t.SpentDollars(),
		RemainingDollars: t.RemainingDollars(),
		HITs:             t.Ledger.TotalHITs(),
		Entries:          t.Ledger.Entries(),
	}
	s.mu.Lock()
	for _, qid := range s.order {
		if q := s.queries[qid]; q != nil && q.TenantID == id {
			sn.Queries = append(sn.Queries, qid)
		}
	}
	s.mu.Unlock()
	sort.Strings(sn.Queries)
	return sn, true
}

// Close cancels every live query, waits for their goroutines, and
// stops the backend muxes.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	qs := make([]*Query, 0, len(s.queries))
	for _, q := range s.queries {
		qs = append(qs, q)
	}
	s.mu.Unlock()
	for _, q := range qs {
		// Shutdown is not a user cancel: the journal seals
		// "interrupted", so the next boot resumes these queries.
		q.cancelCause(errShutdown)
	}
	s.wg.Wait()
	for _, m := range s.muxes {
		m.Close()
	}
	// Breakers last: closing them releases any posting call still
	// parked on an open circuit.
	for _, b := range s.breakers {
		b.Close()
	}
}
