package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"qurk/internal/answerstore"
	"qurk/internal/core"
	"qurk/internal/cost"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/hit"
	"qurk/internal/relation"
)

const isFemaleQuery = `SELECT c.name FROM celeb AS c WHERE isFemale(c.img)`

// newTestService builds a service over the celebrity dataset and a
// post-tracking simulated market.
func newTestService(t *testing.T, n int, budgets map[string]float64) (*Service, *crowd.SimMarket) {
	t.Helper()
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: n, Seed: 1})
	mcfg := crowd.DefaultConfig(1)
	mcfg.TrackPosts = true
	market := crowd.NewSimMarket(mcfg, d.Oracle())

	cat := relation.NewCatalog()
	cat.Register(d.Celeb)
	lib := core.NewLibrary()
	lib.MustRegister(dataset.IsFemaleTask())

	store, err := answerstore.Open("", answerstore.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	for id, b := range budgets {
		reg.Ensure(id, b)
	}
	svc, err := New(Config{
		Backends: map[string]crowd.Marketplace{"sim": market},
		Catalog:  cat,
		Library:  lib,
		Answers:  store,
		Options:  core.Options{Assignments: 3, FilterBatch: 2},
		Tenants:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc, market
}

// waitTerminal follows the query until it reaches a terminal state.
func waitTerminal(t *testing.T, q *Query) State {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := q.StreamRows(ctx, 0, func(int, relation.Tuple) error { return nil })
	if err != nil {
		t.Fatalf("query %s did not finish: %v", q.ID, err)
	}
	return st
}

// TestCrossQueryDedup is the tentpole's acceptance check: a second
// identical query — from a different tenant — posts zero new HITs,
// because every question is served from the shared answer store. The
// post-tracking simulator's admission log is the ground truth.
func TestCrossQueryDedup(t *testing.T) {
	svc, market := newTestService(t, 12, nil)

	q1, err := svc.Submit(SubmitRequest{Tenant: "alice", Query: isFemaleQuery})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, q1); st != StateDone {
		t.Fatalf("first query state = %s (%s)", st, q1.Snapshot().Error)
	}
	posted1 := len(market.PostedHITs())
	if posted1 == 0 {
		t.Fatal("first query posted no HITs")
	}

	q2, err := svc.Submit(SubmitRequest{Tenant: "bob", Query: isFemaleQuery})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, q2); st != StateDone {
		t.Fatalf("second query state = %s (%s)", st, q2.Snapshot().Error)
	}
	if posted2 := len(market.PostedHITs()); posted2 != posted1 {
		t.Fatalf("second identical query posted %d new HITs (admission log %d -> %d), want 0",
			posted2-posted1, posted1, posted2)
	}

	sn1, sn2 := q1.Snapshot(), q2.Snapshot()
	if sn2.Reused == 0 {
		t.Fatal("second query reused no stored answers")
	}
	if sn2.HITs != 0 {
		t.Fatalf("second query reports %d HITs, want 0", sn2.HITs)
	}
	if sn1.Rows != sn2.Rows {
		t.Fatalf("results diverge: %d rows vs %d rows", sn1.Rows, sn2.Rows)
	}

	// Ledgers split per tenant: alice paid for the crowd work, bob paid
	// nothing.
	alice, _ := svc.TenantSnapshot("alice")
	bob, _ := svc.TenantSnapshot("bob")
	if alice.SpentDollars <= 0 {
		t.Fatalf("alice spent $%.2f, want > 0", alice.SpentDollars)
	}
	if bob.SpentDollars != 0 {
		t.Fatalf("bob spent $%.2f, want 0", bob.SpentDollars)
	}
}

// TestConcurrentTenants runs two tenants' overlapping queries at the
// same time; with the race detector this exercises the shared mux,
// answer store, and tenant ledgers under contention. Both must finish
// with identical results, and the combined crowd work must not exceed
// one query's worth plus the (timing-dependent) overlap both started
// before the other stored its answers.
func TestConcurrentTenants(t *testing.T) {
	svc, market := newTestService(t, 10, nil)

	// Solo baseline on an identical, separately seeded world.
	solo, soloMarket := newTestService(t, 10, nil)
	qs, err := solo.Submit(SubmitRequest{Tenant: "solo", Query: isFemaleQuery})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, qs); st != StateDone {
		t.Fatalf("solo query state = %s", st)
	}
	soloPosted := len(soloMarket.PostedHITs())

	var wg sync.WaitGroup
	queries := make([]*Query, 2)
	errs := make([]error, 2)
	for i, tenant := range []string{"alice", "bob"} {
		q, err := svc.Submit(SubmitRequest{Tenant: tenant, Query: isFemaleQuery})
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
		wg.Add(1)
		go func(i int, q *Query) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_, errs[i] = q.StreamRows(ctx, 0, func(int, relation.Tuple) error { return nil })
		}(i, q)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	sn1, sn2 := queries[0].Snapshot(), queries[1].Snapshot()
	if sn1.State != StateDone || sn2.State != StateDone {
		t.Fatalf("states %s/%s, want done/done", sn1.State, sn2.State)
	}
	if sn1.Rows != sn2.Rows {
		t.Fatalf("concurrent identical queries disagree: %d rows vs %d rows", sn1.Rows, sn2.Rows)
	}
	// Cross-query reuse bounds the admission log: identical queries
	// mint identical HIT IDs, so even in the racy window where both
	// queries post, the tracking market re-attaches instead of
	// admitting duplicates — the log never exceeds one query's worth.
	posted := len(market.PostedHITs())
	if posted > soloPosted {
		t.Fatalf("concurrent pair admitted %d distinct HITs, solo run admits %d", posted, soloPosted)
	}
	// Ledgers are per tenant: each query is charged for what it posted
	// (answer-store hits post nothing), which is at least the distinct
	// work and at most both paying full freight.
	alice, _ := svc.TenantSnapshot("alice")
	bob, _ := svc.TenantSnapshot("bob")
	if got := alice.HITs + bob.HITs; got < posted || got > 2*soloPosted {
		t.Fatalf("tenant ledgers account %d HITs, want between %d and %d", got, posted, 2*soloPosted)
	}
}

// TestAdmissionControl rejects a query whose optimizer estimate
// exceeds the tenant's remaining budget, before anything runs.
func TestAdmissionControl(t *testing.T) {
	svc, market := newTestService(t, 12, map[string]float64{"poor": 0.01})
	_, err := svc.Submit(SubmitRequest{Tenant: "poor", Query: isFemaleQuery})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Submit err = %v, want ErrBudgetExceeded", err)
	}
	if n := len(market.PostedHITs()); n != 0 {
		t.Fatalf("rejected query posted %d HITs", n)
	}
}

// TestMidRunCutoff: a budget that passes admission (the optimizer
// underestimates) still cuts the query off at the first group that
// would overdraft, failing the query with ErrBudgetExceeded.
func TestMidRunCutoff(t *testing.T) {
	tenant := &Tenant{ID: "t", BudgetDollars: 0.10, Ledger: cost.NewLedger()}
	gate := &BudgetGate{Tenant: tenant, Label: "q1", Inner: nopMarket{}}

	small := &hit.Group{ID: "g1", HITs: []*hit.HIT{{ID: "h1", Assignments: 3}}} // $0.045
	if _, err := gate.Run(small); err != nil {
		t.Fatalf("first group rejected: %v", err)
	}
	big := &hit.Group{ID: "g2", HITs: make([]*hit.HIT, 4)} // 4 × 3 asn = $0.18
	for i := range big.HITs {
		big.HITs[i] = &hit.HIT{ID: fmt.Sprintf("h%d", i+2), Assignments: 3}
	}
	_, err := gate.Run(big)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("overdrafting group err = %v, want ErrBudgetExceeded", err)
	}
	if !strings.Contains(err.Error(), "tenant t") {
		t.Fatalf("error does not name the tenant: %v", err)
	}
	// The rejected group was not charged.
	if got, want := tenant.SpentDollars(), cost.Dollars(1, 3); got != want {
		t.Fatalf("spent $%.3f, want $%.3f", got, want)
	}
	// Async rejection takes the same path.
	a := <-gate.RunAsync(big)
	if !errors.Is(a.Err, ErrBudgetExceeded) {
		t.Fatalf("RunAsync err = %v, want ErrBudgetExceeded", a.Err)
	}
}

// nopMarket accepts every group and returns an empty result.
type nopMarket struct{}

func (nopMarket) Run(g *hit.Group) (*crowd.RunResult, error) { return &crowd.RunResult{}, nil }
func (nopMarket) RunAsync(g *hit.Group) <-chan crowd.Async {
	return crowd.GoRun(func() (*crowd.RunResult, error) { return &crowd.RunResult{}, nil })
}

// blockingMarket holds every Run until released, so tests can observe
// a query mid-flight.
type blockingMarket struct {
	release chan struct{}
	inner   crowd.Marketplace
}

func (b *blockingMarket) Run(g *hit.Group) (*crowd.RunResult, error) {
	<-b.release
	return b.inner.Run(g)
}
func (b *blockingMarket) RunAsync(g *hit.Group) <-chan crowd.Async {
	return crowd.GoRun(func() (*crowd.RunResult, error) { return b.Run(g) })
}

// TestCancel cancels a query blocked on the marketplace and asserts
// the cancelled terminal state.
func TestCancel(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 8, Seed: 1})
	cat := relation.NewCatalog()
	cat.Register(d.Celeb)
	lib := core.NewLibrary()
	lib.MustRegister(dataset.IsFemaleTask())
	blocked := &blockingMarket{
		release: make(chan struct{}),
		inner:   crowd.NewSimMarket(crowd.DefaultConfig(1), d.Oracle()),
	}
	svc, err := New(Config{
		Backends: map[string]crowd.Marketplace{"sim": blocked},
		Catalog:  cat,
		Library:  lib,
		Options:  core.Options{Assignments: 3, FilterBatch: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer close(blocked.release)
	defer svc.Close()

	q, err := svc.Submit(SubmitRequest{Tenant: "alice", Query: isFemaleQuery})
	if err != nil {
		t.Fatal(err)
	}
	q.Cancel()
	if st := waitTerminal(t, q); st != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st)
	}
}

// TestMuxMultiplexesBackend: many concurrent posters through one Mux
// all complete, and the admission counters see every group.
func TestMuxMultiplexesBackend(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 4, Seed: 1})
	m := NewMux(crowd.NewSimMarket(crowd.DefaultConfig(1), d.Oracle()))
	defer m.Close()

	const posters = 8
	var wg sync.WaitGroup
	errs := make([]error, posters)
	for i := 0; i < posters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := hit.Question{
				ID:    fmt.Sprintf("mux/t%02d", i),
				Kind:  hit.FilterQ,
				Task:  "isFemale",
				Tuple: d.Celeb.Row(i % d.Celeb.Len()),
			}
			g := &hit.Group{ID: fmt.Sprintf("mux-g%02d", i), HITs: []*hit.HIT{{
				ID: fmt.Sprintf("mux-g%02d/h0", i), GroupID: fmt.Sprintf("mux-g%02d", i),
				Assignments: 3, Questions: []hit.Question{q},
			}}}
			res, err := m.Run(g)
			if err == nil && len(res.Assignments) == 0 {
				err = errors.New("no assignments")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("poster %d: %v", i, err)
		}
	}
	groups, hits := m.Stats()
	if groups != posters || hits != posters {
		t.Fatalf("mux admitted %d groups / %d HITs, want %d/%d", groups, hits, posters, posters)
	}
	// Closed mux rejects new work instead of hanging.
	m.Close()
	a := <-m.RunAsync(&hit.Group{ID: "late"})
	if a.Err == nil {
		t.Fatal("closed mux accepted a group")
	}
}
