// Package adaptive implements the paper's §6 future-work mechanisms:
// adaptively deciding whether another answer is needed per question
// (§2.1 "we also explore algorithms for adaptively deciding whether
// another answer is needed"), binary-searching the ideal batch size
// ("such an algorithm performs a binary search on the batch size"),
// allocating a fixed dollar budget across a whole query plan ("Whole
// Plan Budget Allocation"), and banning workers the QualityAdjust
// algorithm identifies as spammers.
package adaptive

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"qurk/internal/combine"
	"qurk/internal/cost"
	"qurk/internal/crowd"
	"qurk/internal/hit"
	"qurk/internal/poster"
	"qurk/internal/relation"
	"qurk/internal/task"
)

// VoteConfig controls sequential vote allocation for yes/no questions.
type VoteConfig struct {
	// MinVotes is the initial round size (default 3).
	MinVotes int
	// MaxVotes caps spending per question (default 11).
	MaxVotes int
	// Step is the round size after the first (default 2).
	Step int
	// Confidence is the posterior threshold to stop early (default
	// 0.9): stop once P(majority answer is the popular one | votes)
	// exceeds it under a uniform prior over the yes-rate.
	Confidence float64
	// Shards splits the relation into independently pipelined vote
	// loops (default 4): while one shard combines its last round and
	// posts the next probe, the other shards' rounds are still in
	// flight, so marketplace latency overlaps instead of stacking.
	// The shard count is part of the configuration — never derived
	// from the machine — so results are identical on any core count.
	Shards int
	// GroupPrefix namespaces the HIT groups this run posts (default
	// "adapt"). Per-HIT randomness derives from the group and HIT
	// IDs, so two runs with the same prefix against one simulated
	// market draw identical streams; give repeated runs distinct
	// prefixes to decorrelate them.
	GroupPrefix string
	// StreamChunkHITs is how many of a probe round's HITs post per
	// marketplace call (default 8): rounds go through the shared
	// chunked poster, so posting overlaps collection within a round.
	StreamChunkHITs int
	// StreamLookahead bounds a round's in-flight chunks (default 2).
	StreamLookahead int
	// RefusedRetries bounds half-batch re-posts of refused round HITs
	// (default 2; -1 disables). Before rounds went through the poster
	// a refused HIT's tuples simply got no votes that round.
	RefusedRetries int
	// ExpiredRetries bounds re-posts of round HITs whose assignments
	// were accepted but never submitted (default 2; -1 disables).
	ExpiredRetries int
}

func (c *VoteConfig) fillDefaults() {
	if c.MinVotes == 0 {
		c.MinVotes = 3
	}
	if c.MaxVotes == 0 {
		c.MaxVotes = 11
	}
	if c.Step == 0 {
		c.Step = 2
	}
	if c.Confidence == 0 {
		c.Confidence = 0.9
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.GroupPrefix == "" {
		c.GroupPrefix = "adapt"
	}
	if c.StreamChunkHITs <= 0 {
		c.StreamChunkHITs = 8
	}
	if c.StreamLookahead <= 0 {
		c.StreamLookahead = 2
	}
	if c.RefusedRetries == 0 {
		c.RefusedRetries = 2
	}
	if c.ExpiredRetries == 0 {
		c.ExpiredRetries = 2
	}
}

// PosteriorMajority returns P(θ > 0.5 | yes, no) for a Bernoulli yes-rate
// θ with a uniform prior — the confidence that "yes" is the true majority
// answer. Symmetric for "no" via 1 − p.
func PosteriorMajority(yes, no int) float64 {
	// Beta(yes+1, no+1) tail above 0.5, by Simpson integration (the
	// stdlib has no incomplete beta). The integrand is a polynomial,
	// so a fixed grid is plenty accurate for vote counts ≤ ~50.
	a, b := float64(yes+1), float64(no+1)
	logBeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	const steps = 400
	h := 0.5 / steps
	var sum float64
	f := func(x float64) float64 {
		if x <= 0 || x >= 1 {
			return 0
		}
		return math.Exp((a-1)*math.Log(x) + (b-1)*math.Log(1-x) - logBeta)
	}
	for i := 0; i <= steps; i++ {
		x := 0.5 + float64(i)*h
		w := 2.0
		switch {
		case i == 0 || i == steps:
			w = 1
		case i%2 == 1:
			w = 4
		}
		sum += w * f(x)
	}
	return clamp01(sum * h / 3)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// AdaptiveFilterResult reports an adaptive filter run.
type AdaptiveFilterResult struct {
	// Passed holds accepted tuples.
	Passed *relation.Relation
	// Decisions, Confidence, VotesUsed are per row.
	Decisions  []bool
	Confidence []float64
	VotesUsed  []int
	// Rounds is the pipeline depth: the largest number of sequential
	// marketplace round trips any one shard needed (shards overlap,
	// so total posts across shards can be up to Shards× this).
	Rounds int
	// TotalAssignments is the spend; compare against
	// rows × MaxVotes for the savings.
	TotalAssignments int
	// HITCount counts HITs across rounds, including refusal and
	// expiry re-posts.
	HITCount int
	// TotalExpired counts assignments accepted but never submitted
	// before the deadline (each was re-posted up to ExpiredRetries).
	TotalExpired int
	// Incomplete lists question IDs whose retry budgets were
	// exhausted with zero votes in some round.
	Incomplete []string
}

// RunAdaptiveFilter executes a crowd filter with sequential vote
// allocation: every tuple starts with MinVotes; only tuples whose
// posterior stays below Confidence get more votes, Step at a time, up
// to MaxVotes. Easy tuples settle cheaply; ambiguous ones get the
// budget (the fixed-vote baseline spends MaxVotes everywhere).
//
// The relation is split into cfg.Shards independent vote loops running
// concurrently: each shard issues its next probe round as soon as it
// finishes combining its last, so one shard's round trip overlaps the
// others' in-flight work. Within a round, votes tally via the streaming
// path as individual HITs complete. Shard membership, group IDs, and
// per-HIT seeds depend only on tuple index and configuration, so the
// result is deterministic regardless of scheduling.
func RunAdaptiveFilter(rel *relation.Relation, ft *task.Filter, cfg VoteConfig, market crowd.Marketplace) (*AdaptiveFilterResult, error) {
	return RunAdaptiveFilterContext(context.Background(), rel, ft, cfg, market)
}

// RunAdaptiveFilterContext is RunAdaptiveFilter with cooperative
// cancellation: the filter is a pipeline breaker (it needs every
// tuple's posterior settled before emitting), but between probe rounds
// each shard checks ctx and stops posting further rounds once the
// context is done. Rounds already in flight complete — posted crowd
// work cannot be recalled — and their spend is reported in the error
// path's counters.
func RunAdaptiveFilterContext(ctx context.Context, rel *relation.Relation, ft *task.Filter, cfg VoteConfig, market crowd.Marketplace) (*AdaptiveFilterResult, error) {
	cfg.fillDefaults()
	if err := ft.Validate(); err != nil {
		return nil, err
	}
	n := rel.Len()
	res := &AdaptiveFilterResult{
		Passed:     relation.New(rel.Name(), rel.Schema()),
		Decisions:  make([]bool, n),
		Confidence: make([]float64, n),
		VotesUsed:  make([]int, n),
	}
	if n == 0 {
		return res, nil
	}

	shards := cfg.Shards
	if shards > n {
		shards = n
	}
	type shardOut struct {
		rounds, hits, assignments int
		expired                   int
		incomplete                []string
		err                       error
	}
	// cancelled stops the other shards from posting further rounds
	// once any shard fails — against a live marketplace those rounds
	// are real money whose results would be discarded.
	var cancelled atomic.Bool
	outs := make([]chan shardOut, shards)
	for s := 0; s < shards; s++ {
		outs[s] = make(chan shardOut, 1)
		// Contiguous index blocks keep each shard's HIT batches as
		// dense as the unsharded layout.
		lo, hi := s*n/shards, (s+1)*n/shards
		go func(s, lo, hi int) {
			acct := &roundAcct{}
			rounds, assignments, err := runVoteLoop(ctx, rel, ft, cfg, market, s, lo, hi, res, &cancelled, acct)
			if err != nil {
				cancelled.Store(true)
			}
			outs[s] <- shardOut{rounds, acct.hits, assignments, acct.expired, acct.incomplete, err}
		}(s, lo, hi)
	}
	// Drain every shard before returning so no goroutine is still
	// posting when the caller sees the error.
	var firstErr error
	for s := 0; s < shards; s++ {
		o := <-outs[s]
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		if o.rounds > res.Rounds {
			res.Rounds = o.rounds
		}
		res.HITCount += o.hits
		res.TotalAssignments += o.assignments
		res.TotalExpired += o.expired
		res.Incomplete = append(res.Incomplete, o.incomplete...)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for i := 0; i < n; i++ {
		if res.Decisions[i] {
			if err := res.Passed.Append(rel.Row(i)); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// roundAcct tallies a shard's poster spending; it implements
// poster.Acct.
type roundAcct struct {
	hits       int
	asns       int
	expired    int
	incomplete []string
}

// Posted counts a chunk's HITs at post time.
func (a *roundAcct) Posted(chunk []*hit.HIT, _ float64) { a.hits += len(chunk) }

// Collected folds in a chunk's assignment/expiry counts and exhausted
// questions.
func (a *roundAcct) Collected(assignments, expired int, _ float64, incomplete []string) {
	a.asns += assignments
	a.expired += expired
	a.incomplete = append(a.incomplete, incomplete...)
}

// runVoteLoop runs the sequential vote-allocation rounds for tuple
// indices [lo, hi). It writes only its own slice entries of res
// (Decisions/Confidence/VotesUsed are indexed per tuple), so shards
// never contend. Each round's HITs post through the shared chunked
// poster: chunks overlap collection within the round and refused or
// expired HITs are re-posted with lineage IDs instead of silently
// costing their tuples the round's votes.
func runVoteLoop(ctx context.Context, rel *relation.Relation, ft *task.Filter, cfg VoteConfig, market crowd.Marketplace,
	shard, lo, hi int, res *AdaptiveFilterResult, cancelled *atomic.Bool, acct *roundAcct) (rounds, assignments int, err error) {
	yes := make(map[int]int, hi-lo)
	no := make(map[int]int, hi-lo)
	pending := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		pending = append(pending, i)
	}
	qid := func(i int) string { return fmt.Sprintf("%s/t%05d", cfg.GroupPrefix, i) }
	rr := cfg.RefusedRetries
	if rr < 0 {
		rr = 0
	}
	xr := cfg.ExpiredRetries
	if xr < 0 {
		xr = 0
	}

	for len(pending) > 0 && !cancelled.Load() {
		if cerr := ctx.Err(); cerr != nil {
			return rounds, assignments, cerr
		}
		rounds++
		votesThisRound := cfg.Step
		if rounds == 1 {
			votesThisRound = cfg.MinVotes
		}
		groupID := fmt.Sprintf("%s/s%d/r%d", cfg.GroupPrefix, shard, rounds)
		b := hit.NewBuilder(groupID, votesThisRound, 1)
		questions := make([]hit.Question, 0, len(pending))
		for _, i := range pending {
			questions = append(questions, hit.Question{
				ID:    qid(i),
				Kind:  hit.FilterQ,
				Task:  ft.Name,
				Tuple: rel.Row(i),
			})
		}
		p := poster.New(poster.Config{
			Market:         market,
			GroupID:        groupID,
			ChunkHITs:      cfg.StreamChunkHITs,
			Lookahead:      cfg.StreamLookahead,
			Acct:           acct,
			RefusedRetries: rr,
			ExpiredRetries: xr,
		})
		if merr := p.FlushQuestions(b, &questions, 5, true); merr != nil {
			return rounds, assignments, merr
		}
		// Combine incrementally: vote counters update as each chunk
		// lands, not after the whole round returns.
		byQ := map[string][]bool{}
		asnsBefore := acct.asns
		if _, rerr := p.Drain(ctx, 0, func(q *hit.Question, as []hit.CachedAnswer, _ float64) error {
			for _, ca := range as {
				byQ[q.ID] = append(byQ[q.ID], ca.Answer.Bool)
			}
			return nil
		}); rerr != nil {
			return rounds, assignments, rerr
		}
		assignments += acct.asns - asnsBefore
		// A round that produced no votes (e.g. the marketplace refused
		// every HIT past the retry budget) will never settle its tuples
		// — re-posting the same batch forever would hang, so surface it
		// instead.
		votes := 0
		for _, vs := range byQ {
			votes += len(vs)
		}
		if votes == 0 {
			return rounds, assignments,
				fmt.Errorf("adaptive: no votes in round %d (retry budgets exhausted); tuples %d..%d cannot settle", rounds, lo, hi-1)
		}

		var still []int
		for _, i := range pending {
			for _, v := range byQ[qid(i)] {
				if v {
					yes[i]++
				} else {
					no[i]++
				}
				res.VotesUsed[i]++
			}
			pYes := PosteriorMajority(yes[i], no[i])
			conf := math.Max(pYes, 1-pYes)
			res.Confidence[i] = conf
			if conf >= cfg.Confidence || res.VotesUsed[i] >= cfg.MaxVotes {
				res.Decisions[i] = yes[i] > no[i]
				continue
			}
			still = append(still, i)
		}
		pending = still
		// Durable runs checkpoint the shard's round state — the vote
		// counters and the unsettled set — so a resume that replays the
		// round's HITs must land on the same posterior or fail loudly.
		if ck, ok := market.(checkpointer); ok {
			if cerr := ck.Checkpoint("adaptive-round", groupID, digestRound(yes, no, pending, lo, hi), 0); cerr != nil {
				return rounds, assignments, cerr
			}
		}
	}
	return rounds, assignments, nil
}

// checkpointer is the optional durability hook a journaling
// marketplace wrapper (internal/wal.Market) exposes alongside the
// crowd.Marketplace interface; plain markets don't implement it and
// the vote loop skips checkpointing.
type checkpointer interface {
	Checkpoint(kind, label string, digest uint64, clock float64) error
}

// digestRound fingerprints one shard's post-round vote state.
func digestRound(yes, no map[int]int, pending []int, lo, hi int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	fold := func(dig, v uint64) uint64 {
		for i := 0; i < 8; i++ {
			dig ^= (v >> (8 * i)) & 0xff
			dig *= prime64
		}
		return dig
	}
	dig := uint64(offset64)
	for i := lo; i < hi; i++ {
		dig = fold(dig, uint64(yes[i])<<32|uint64(no[i]))
	}
	dig = fold(dig, uint64(len(pending)))
	for _, i := range pending {
		dig = fold(dig, uint64(i))
	}
	return dig
}

// --- Batch-size binary search (§6 "Choosing Batch Size") ---

// ProbeResult is one batch-size trial's outcome.
type ProbeResult struct {
	// Refused reports whether workers declined the batch.
	Refused bool
	// Accuracy is the probe's answer accuracy in [0,1] (against a
	// gold sample or vote agreement).
	Accuracy float64
	// MakespanHours is the probe's completion time.
	MakespanHours float64
}

// TuneStep records one probe for post-hoc inspection.
type TuneStep struct {
	Batch  int
	Result ProbeResult
}

// BatchTuneConfig bounds the search.
type BatchTuneConfig struct {
	// Min and Max bound the batch size (defaults 1, 32).
	Min, Max int
	// MinAccuracy aborts growth when quality drops (default 0.85).
	MinAccuracy float64
	// MaxProbes caps marketplace round trips (default 8).
	MaxProbes int
}

func (c *BatchTuneConfig) fillDefaults() {
	if c.Min == 0 {
		c.Min = 1
	}
	if c.Max == 0 {
		c.Max = 32
	}
	if c.MinAccuracy == 0 {
		c.MinAccuracy = 0.85
	}
	if c.MaxProbes == 0 {
		c.MaxProbes = 8
	}
}

// TuneBatchSize binary-searches the largest workable batch size, exactly
// as §6 sketches: grow while workers accept and accuracy holds, shrink
// when they refuse or accuracy drops. probe posts a real (small) batch
// at the candidate size and reports back.
func TuneBatchSize(probe func(batch int) (ProbeResult, error), cfg BatchTuneConfig) (int, []TuneStep, error) {
	cfg.fillDefaults()
	lo, hi := cfg.Min, cfg.Max
	best := 0
	var steps []TuneStep
	for p := 0; p < cfg.MaxProbes && lo <= hi; p++ {
		mid := (lo + hi) / 2
		r, err := probe(mid)
		if err != nil {
			return 0, steps, err
		}
		steps = append(steps, TuneStep{Batch: mid, Result: r})
		if r.Refused || r.Accuracy < cfg.MinAccuracy {
			hi = mid - 1
			continue
		}
		best = mid
		lo = mid + 1
	}
	if best == 0 {
		return 0, steps, fmt.Errorf("adaptive: no workable batch size in [%d,%d]", cfg.Min, cfg.Max)
	}
	return best, steps, nil
}

// FilterProbe builds a probe function for a filter task over a sample
// relation, measuring accuracy as inter-vote agreement (the fraction of
// unanimous-majority votes), so no gold data is needed.
func FilterProbe(sample *relation.Relation, ft *task.Filter, assignments int, market crowd.Marketplace) func(batch int) (ProbeResult, error) {
	probeSeq := 0
	return func(batch int) (ProbeResult, error) {
		probeSeq++
		b := hit.NewBuilder(fmt.Sprintf("tune/p%d", probeSeq), assignments, 1)
		questions := make([]hit.Question, sample.Len())
		for i := 0; i < sample.Len(); i++ {
			questions[i] = hit.Question{
				ID:    fmt.Sprintf("tune/p%d/t%d", probeSeq, i),
				Kind:  hit.FilterQ,
				Task:  ft.Name,
				Tuple: sample.Row(i),
			}
		}
		hits, err := b.Merge(questions, batch)
		if err != nil {
			return ProbeResult{}, err
		}
		run, err := market.Run(&hit.Group{ID: fmt.Sprintf("tune/p%d", probeSeq), HITs: hits})
		if err != nil {
			return ProbeResult{}, err
		}
		if len(run.Incomplete) > 0 {
			return ProbeResult{Refused: true}, nil
		}
		// Agreement: mean majority share per question.
		counts := map[string][2]int{}
		qByHIT := map[string]*hit.HIT{}
		for _, h := range hits {
			qByHIT[h.ID] = h
		}
		for _, a := range run.Assignments {
			h := qByHIT[a.HITID]
			if h == nil {
				continue
			}
			for qi, ans := range a.Answers {
				if qi >= len(h.Questions) {
					break
				}
				c := counts[h.Questions[qi].ID]
				if ans.Bool {
					c[0]++
				} else {
					c[1]++
				}
				counts[h.Questions[qi].ID] = c
			}
		}
		var agree float64
		for _, c := range counts {
			total := c[0] + c[1]
			if total == 0 {
				continue
			}
			maj := c[0]
			if c[1] > maj {
				maj = c[1]
			}
			agree += float64(maj) / float64(total)
		}
		if len(counts) > 0 {
			agree /= float64(len(counts))
		}
		return ProbeResult{Accuracy: agree, MakespanHours: run.MakespanHours}, nil
	}
}

// --- Whole-plan budget allocation (§6) ---

// BudgetStage is one operator's spending options within a plan.
type BudgetStage struct {
	// Name labels the stage ("filter", "join", "sort").
	Name string
	// HITsPerAssignmentLevel maps assignments-per-HIT → HITs needed.
	// Typically constant in assignments; kept general for operators
	// whose batching depends on it.
	HITs int
	// Levels are the allowed assignments-per-HIT choices, ascending
	// (e.g. 1, 3, 5, 7).
	Levels []int
	// Quality estimates answer quality at each level in [0,1]; must
	// be ascending and match Levels.
	Quality []float64
}

// BudgetPlan is the allocator's decision.
type BudgetPlan struct {
	// Assignments per stage, aligned with the input stages.
	Assignments []int
	// Dollars is the plan's total cost.
	Dollars float64
	// Quality is the minimum stage quality (a chain is as good as its
	// weakest operator).
	Quality float64
}

// AllocateBudget picks assignment levels per stage to maximize the
// minimum stage quality subject to a dollar budget — a greedy marginal
// allocator for the paper's open "assign a fixed amount of money to an
// entire query plan" problem. Returns an error if even the cheapest
// levels exceed the budget.
func AllocateBudget(stages []BudgetStage, budgetDollars float64) (*BudgetPlan, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("adaptive: no stages")
	}
	level := make([]int, len(stages)) // index into Levels
	spend := func() float64 {
		var d float64
		for i, s := range stages {
			d += cost.Dollars(s.HITs, s.Levels[level[i]])
		}
		return d
	}
	for i, s := range stages {
		if len(s.Levels) == 0 || len(s.Levels) != len(s.Quality) {
			return nil, fmt.Errorf("adaptive: stage %s has malformed levels", s.Name)
		}
		level[i] = 0
	}
	if spend() > budgetDollars {
		return nil, fmt.Errorf("adaptive: budget $%.2f cannot cover minimum plan cost $%.2f", budgetDollars, spend())
	}
	// Greedy: repeatedly upgrade the stage with the lowest current
	// quality if the upgrade fits the budget.
	for {
		worst, worstQ := -1, math.Inf(1)
		for i, s := range stages {
			if level[i]+1 >= len(s.Levels) {
				continue
			}
			if q := s.Quality[level[i]]; q < worstQ {
				worst, worstQ = i, q
			}
		}
		if worst < 0 {
			break
		}
		level[worst]++
		if spend() > budgetDollars {
			level[worst]--
			// The weakest stage cannot afford an upgrade; no other
			// upgrade raises the minimum, so stop.
			break
		}
	}
	plan := &BudgetPlan{Assignments: make([]int, len(stages)), Quality: math.Inf(1)}
	for i, s := range stages {
		plan.Assignments[i] = s.Levels[level[i]]
		if q := s.Quality[level[i]]; q < plan.Quality {
			plan.Quality = q
		}
	}
	plan.Dollars = spend()
	return plan, nil
}

// combineGuard keeps the combine import for gold-standard integration.
var _ = combine.MajorityVote{}
