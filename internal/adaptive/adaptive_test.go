package adaptive

import (
	"fmt"
	"math"
	"testing"

	"qurk/internal/core"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/relation"
)

func TestPosteriorMajority(t *testing.T) {
	// Symmetric: no information.
	if p := PosteriorMajority(0, 0); math.Abs(p-0.5) > 1e-3 {
		t.Errorf("P(0,0) = %v, want 0.5", p)
	}
	if p := PosteriorMajority(2, 2); math.Abs(p-0.5) > 1e-3 {
		t.Errorf("P(2,2) = %v, want 0.5", p)
	}
	// More yes votes → higher confidence; monotone in evidence.
	p31 := PosteriorMajority(3, 1)
	p51 := PosteriorMajority(5, 1)
	p91 := PosteriorMajority(9, 1)
	if !(0.5 < p31 && p31 < p51 && p51 < p91 && p91 < 1) {
		t.Errorf("posterior not monotone: %v %v %v", p31, p51, p91)
	}
	// Complement symmetry.
	if math.Abs(PosteriorMajority(1, 4)-(1-PosteriorMajority(4, 1))) > 1e-6 {
		t.Error("posterior not symmetric")
	}
	// Known value: P(θ>0.5 | 1 yes, 0 no) = 1 - 0.25 = 0.75 for
	// Beta(2,1): CDF(x)=x², tail above 0.5 = 1-0.25.
	if p := PosteriorMajority(1, 0); math.Abs(p-0.75) > 1e-3 {
		t.Errorf("P(1,0) = %v, want 0.75", p)
	}
}

func TestRunAdaptiveFilterSavesVotes(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 40, Seed: 3})
	m := crowd.NewSimMarket(crowd.DefaultConfig(3), d.Oracle())
	cfg := VoteConfig{MinVotes: 3, MaxVotes: 11, Step: 2, Confidence: 0.9}
	res, err := RunAdaptiveFilter(d.Celeb, dataset.IsFemaleTask(), cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy comparable to the fixed baseline.
	correct := 0
	for i := 0; i < d.Celeb.Len(); i++ {
		truth, _ := d.Oracle().FilterTruth("isFemale", d.Celeb.Row(i))
		if res.Decisions[i] == truth {
			correct++
		}
	}
	if correct < 36 {
		t.Errorf("adaptive accuracy = %d/40", correct)
	}
	// Spend well below the worst case of 40 × 11.
	if res.TotalAssignments >= 40*11*8/10 {
		t.Errorf("adaptive spent %d assignments, want well under %d", res.TotalAssignments, 40*11)
	}
	// Easy questions settle at MinVotes; at least some should.
	atMin := 0
	for _, v := range res.VotesUsed {
		if v == cfg.MinVotes {
			atMin++
		}
	}
	if atMin < 20 {
		t.Errorf("only %d/40 questions settled at MinVotes", atMin)
	}
	if res.Rounds < 1 {
		t.Error("rounds not counted")
	}
}

func TestRunAdaptiveFilterSpendsOnAmbiguity(t *testing.T) {
	// With very ambiguous questions (difficulty near 1), adaptive
	// voting should escalate to MaxVotes.
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 10, Seed: 5, NonMatchDifficulty: 0.9})
	o := &ambiguousOracle{inner: d.Oracle()}
	m := crowd.NewSimMarket(crowd.DefaultConfig(5), o)
	res, err := RunAdaptiveFilter(d.Celeb, dataset.IsFemaleTask(), VoteConfig{MinVotes: 3, MaxVotes: 9, Step: 2, Confidence: 0.95}, m)
	if err != nil {
		t.Fatal(err)
	}
	maxed := 0
	for _, v := range res.VotesUsed {
		if v >= 9 {
			maxed++
		}
	}
	if maxed < 5 {
		t.Errorf("only %d/10 ambiguous questions escalated to MaxVotes", maxed)
	}
}

// ambiguousOracle makes every filter question a coin flip.
type ambiguousOracle struct{ inner crowd.Oracle }

func (o *ambiguousOracle) JoinMatch(l, r qr) (bool, float64) { return o.inner.JoinMatch(l, r) }
func (o *ambiguousOracle) FilterTruth(task string, t qr) (bool, float64) {
	yes, _ := o.inner.FilterTruth(task, t)
	return yes, 0.97
}
func (o *ambiguousOracle) FieldValue(task, f string, t qr) (string, float64, []string) {
	return o.inner.FieldValue(task, f, t)
}
func (o *ambiguousOracle) Score(task string, t qr) (float64, float64) { return o.inner.Score(task, t) }
func (o *ambiguousOracle) ScoreRange(task string) (float64, float64)  { return o.inner.ScoreRange(task) }

// qr shortens the tuple type in the oracle shim.
type qr = relation.Tuple

func TestTuneBatchSizeFindsBoundary(t *testing.T) {
	// Synthetic probe: batches ≤ 12 work, larger are refused.
	probes := 0
	probe := func(batch int) (ProbeResult, error) {
		probes++
		if batch > 12 {
			return ProbeResult{Refused: true}, nil
		}
		return ProbeResult{Accuracy: 0.95}, nil
	}
	best, steps, err := TuneBatchSize(probe, BatchTuneConfig{Min: 1, Max: 32, MaxProbes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if best < 10 || best > 12 {
		t.Errorf("tuned batch = %d, want ≈12", best)
	}
	if len(steps) == 0 || probes > 8 {
		t.Errorf("probes = %d, steps = %d", probes, len(steps))
	}
}

func TestTuneBatchSizeAccuracyDrop(t *testing.T) {
	// Accuracy decays with batch size; the tuner must stop before the
	// quality floor even though nothing is refused.
	probe := func(batch int) (ProbeResult, error) {
		return ProbeResult{Accuracy: 1.0 - 0.02*float64(batch)}, nil
	}
	best, _, err := TuneBatchSize(probe, BatchTuneConfig{Min: 1, Max: 32, MinAccuracy: 0.85, MaxProbes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if best > 7 {
		t.Errorf("tuned batch = %d exceeds the accuracy floor (acc(8)=0.84)", best)
	}
	// Nothing workable → error.
	if _, _, err := TuneBatchSize(func(int) (ProbeResult, error) {
		return ProbeResult{Refused: true}, nil
	}, BatchTuneConfig{}); err == nil {
		t.Error("all-refused tuning should error")
	}
}

func TestFilterProbeAgainstMarket(t *testing.T) {
	// The sample must be at least as large as the probed batch for a
	// full-size HIT to materialize.
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 50, Seed: 7})
	m := crowd.NewSimMarket(crowd.DefaultConfig(7), d.Oracle())
	probe := FilterProbe(d.Celeb, dataset.IsFemaleTask(), 5, m)
	r, err := probe(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Refused {
		t.Fatal("batch 5 refused")
	}
	if r.Accuracy < 0.7 {
		t.Errorf("agreement = %.2f, want high on a crisp task", r.Accuracy)
	}
	// A 40-question filter HIT exceeds the simulator's refusal effort
	// (30 judgment-equivalents at this price).
	r, err = probe(40)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Refused {
		t.Error("batch 40 should be refused")
	}
}

func TestTuneBatchEndToEnd(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 64, Seed: 9})
	m := crowd.NewSimMarket(crowd.DefaultConfig(9), d.Oracle())
	probe := FilterProbe(d.Celeb, dataset.IsFemaleTask(), 5, m)
	// Note MinAccuracy here is *inter-vote agreement*, which runs below
	// true accuracy (5 votes at per-vote accuracy ~0.82 agree ~0.80 on
	// average); calibrate the floor accordingly.
	best, steps, err := TuneBatchSize(probe, BatchTuneConfig{Min: 1, Max: 64, MinAccuracy: 0.75, MaxProbes: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The simulator refuses filter batches above RefusalEffort (30
	// units); the tuner should land near that boundary.
	if best < 8 || best > 30 {
		t.Errorf("tuned batch = %d, want within the workable band (steps: %+v)", best, steps)
	}
}

func TestAllocateBudget(t *testing.T) {
	stages := []BudgetStage{
		{Name: "filter", HITs: 40, Levels: []int{1, 3, 5, 7}, Quality: []float64{0.7, 0.85, 0.92, 0.95}},
		{Name: "join", HITs: 160, Levels: []int{1, 3, 5, 7}, Quality: []float64{0.75, 0.88, 0.94, 0.96}},
		{Name: "sort", HITs: 20, Levels: []int{1, 3, 5, 7}, Quality: []float64{0.6, 0.8, 0.9, 0.93}},
	}
	// Generous budget: everything upgrades to the top.
	plan, err := AllocateBudget(stages, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range plan.Assignments {
		if a != 7 {
			t.Errorf("stage %d assignments = %d under generous budget", i, a)
		}
	}
	// Tight budget: minimum levels cost 220 HITs × 1 × $0.015 = $3.30.
	plan, err = AllocateBudget(stages, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Dollars > 4 {
		t.Errorf("plan cost $%.2f exceeds budget", plan.Dollars)
	}
	// Impossible budget errors.
	if _, err := AllocateBudget(stages, 1); err == nil {
		t.Error("impossible budget accepted")
	}
	// The allocator raises the weakest stage first: with a medium
	// budget, the cheap sort stage (lowest quality, cheap HITs) should
	// be upgraded beyond its minimum.
	plan, err = AllocateBudget(stages, 8)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Assignments[2] == 1 {
		t.Errorf("weakest stage never upgraded: %+v", plan)
	}
	if _, err := AllocateBudget(nil, 10); err == nil {
		t.Error("empty stages accepted")
	}
	if _, err := AllocateBudget([]BudgetStage{{Name: "x", HITs: 1, Levels: []int{1}, Quality: nil}}, 10); err == nil {
		t.Error("malformed stage accepted")
	}
}

func TestAdaptiveVsFixedCostComparison(t *testing.T) {
	// Headline property: adaptive voting matches fixed-11-votes
	// accuracy at materially lower cost on a realistic mix.
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 30, Seed: 11})
	mA := crowd.NewSimMarket(crowd.DefaultConfig(11), d.Oracle())
	adaptiveRes, err := RunAdaptiveFilter(d.Celeb, dataset.IsFemaleTask(),
		VoteConfig{MinVotes: 3, MaxVotes: 11, Step: 2, Confidence: 0.92}, mA)
	if err != nil {
		t.Fatal(err)
	}
	mF := crowd.NewSimMarket(crowd.DefaultConfig(11), d.Oracle())
	fixedRes, err := core.RunFilter(d.Celeb, dataset.IsFemaleTask(),
		core.FilterOptions{Assignments: 11, BatchSize: 5}, mF)
	if err != nil {
		t.Fatal(err)
	}
	accOf := func(dec []bool) int {
		correct := 0
		for i := 0; i < d.Celeb.Len(); i++ {
			truth, _ := d.Oracle().FilterTruth("isFemale", d.Celeb.Row(i))
			if dec[i] == truth {
				correct++
			}
		}
		return correct
	}
	accAdaptive, accFixed := accOf(adaptiveRes.Decisions), accOf(fixedRes.Decisions)
	if accAdaptive < accFixed-2 {
		t.Errorf("adaptive accuracy %d vs fixed %d", accAdaptive, accFixed)
	}
	fixedAssignments := 30 * 11
	saving := 1 - float64(adaptiveRes.TotalAssignments)/float64(fixedAssignments)
	if saving < 0.3 {
		t.Errorf("adaptive saved only %.0f%% of assignments", saving*100)
	}
	t.Logf("adaptive: %d/%d correct at %d assignments (fixed-11: %d/%d at %d) — %.0f%% cheaper",
		accAdaptive, 30, adaptiveRes.TotalAssignments, accFixed, 30, fixedAssignments, saving*100)
}

var _ = fmt.Sprintf

// TestAdaptiveRefusalRetries: a probe round whose batch-5 HITs are all
// refused used to fail with "no votes in round"; the chunked poster
// now re-posts the questions at half batch, so the filter settles and
// counts the re-posted HITs.
func TestAdaptiveRefusalRetries(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 20, Seed: 5})
	mcfg := crowd.DefaultConfig(5)
	mcfg.RefusalEffort = 3 // batch-5 round HITs exceed this; halves pass
	m := crowd.NewSimMarket(mcfg, d.Oracle())
	res, err := RunAdaptiveFilter(d.Celeb, dataset.IsFemaleTask(), VoteConfig{GroupPrefix: "adapt-refuse"}, m)
	if err != nil {
		t.Fatalf("refused rounds no longer settle: %v", err)
	}
	correct := 0
	for i := 0; i < d.Celeb.Len(); i++ {
		truth, _ := d.Oracle().FilterTruth("isFemale", d.Celeb.Row(i))
		if res.Decisions[i] == truth {
			correct++
		}
	}
	if correct < 16 {
		t.Errorf("accuracy under refusals = %d/20", correct)
	}
	if len(res.Incomplete) != 0 {
		t.Errorf("retried questions should not be incomplete: %v", res.Incomplete)
	}
}

// TestAdaptiveExpiryRetries: expired round assignments are re-posted
// and surface in TotalExpired.
func TestAdaptiveExpiryRetries(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 20, Seed: 7})
	mcfg := crowd.DefaultConfig(7)
	mcfg.AbandonProb = 0.3
	m := crowd.NewSimMarket(mcfg, d.Oracle())
	res, err := RunAdaptiveFilter(d.Celeb, dataset.IsFemaleTask(), VoteConfig{GroupPrefix: "adapt-expire"}, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalExpired == 0 {
		t.Error("AbandonProb = 0.3 produced no expired count")
	}
	for i := range res.VotesUsed {
		if res.VotesUsed[i] == 0 {
			t.Fatalf("tuple %d settled with zero votes", i)
		}
	}
}
