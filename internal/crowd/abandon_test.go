package crowd

import (
	"fmt"
	"reflect"
	"testing"

	"qurk/internal/hit"
)

// Tests for the simulator's worker-abandonment model: with
// Config.AbandonProb set, a sampled worker may accept a HIT and never
// submit it, so the assignment expires at AssignmentDurationHours and is
// reported in RunResult.Expired. Abandonment must be deterministic per
// (seed, groupID, hitID) — the same contract every other simulated
// outcome already honors.

func abandonGroup(n int) *hit.Group {
	g := &hit.Group{ID: "abandon-test"}
	for i := 0; i < n; i++ {
		g.HITs = append(g.HITs, &hit.HIT{
			ID:          fmt.Sprintf("h%03d", i),
			GroupID:     g.ID,
			Kind:        hit.FilterQ,
			Assignments: 5,
			Questions: []hit.Question{
				{ID: fmt.Sprintf("q%03d", i), Kind: hit.FilterQ, Task: "isEven", Tuple: item(fmt.Sprintf("i%d", i))},
			},
		})
	}
	return g
}

func abandonMarket(seed int64, prob float64) *SimMarket {
	cfg := DefaultConfig(seed)
	cfg.AbandonProb = prob
	return NewSimMarket(cfg, &pairOracle{n: 32})
}

// TestAbandonmentOffByDefault: the zero-valued knob draws nothing from
// the per-HIT RNG streams, so legacy runs stay bit-identical and no HIT
// reports expiry.
func TestAbandonmentOffByDefault(t *testing.T) {
	base, err := abandonMarket(3, 0).Run(abandonGroup(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Expired) != 0 {
		t.Fatalf("no abandonment configured, got Expired = %v", base.Expired)
	}
	if base.TotalAssignments != 16*5 {
		t.Fatalf("TotalAssignments = %d, want %d", base.TotalAssignments, 16*5)
	}
}

// TestAbandonmentDeterministic: same seed, same config → identical
// expiry pattern and identical surviving assignments, at any
// parallelism.
func TestAbandonmentDeterministic(t *testing.T) {
	run := func(parallelism int) *RunResult {
		cfg := DefaultConfig(9)
		cfg.AbandonProb = 0.3
		cfg.Parallelism = parallelism
		m := NewSimMarket(cfg, &pairOracle{n: 32})
		res, err := m.Run(abandonGroup(24))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(0), run(1), run(4)
	if len(a.Expired) == 0 {
		t.Fatal("AbandonProb = 0.3 over 120 assignments expired nothing; model inactive")
	}
	for _, other := range []*RunResult{b, c} {
		if !reflect.DeepEqual(a.Expired, other.Expired) {
			t.Errorf("expiry pattern differs across parallelism: %v vs %v", a.Expired, other.Expired)
		}
		if !reflect.DeepEqual(a.Assignments, other.Assignments) {
			t.Error("surviving assignments differ across parallelism")
		}
	}
	// Accounting: completed + expired = requested.
	exp := 0
	for _, n := range a.Expired {
		exp += n
	}
	if a.TotalAssignments+exp != 24*5 {
		t.Errorf("completed %d + expired %d != requested %d", a.TotalAssignments, exp, 24*5)
	}
}

// TestAbandonmentExtendsMakespan: an expired assignment is only known
// to be gone at the assignment deadline, so the group's makespan is
// floored at AssignmentDurationHours.
func TestAbandonmentExtendsMakespan(t *testing.T) {
	cfg := DefaultConfig(11)
	cfg.AbandonProb = 0.5
	cfg.AssignmentDurationHours = 3.5
	m := NewSimMarket(cfg, &pairOracle{n: 32})
	res, err := m.Run(abandonGroup(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Expired) == 0 {
		t.Fatal("expected expirations at AbandonProb = 0.5")
	}
	if res.MakespanHours < 3.5 {
		t.Errorf("MakespanHours = %.3f, want ≥ the 3.5h assignment deadline", res.MakespanHours)
	}

	clean, err := abandonMarket(11, 0).Run(abandonGroup(8))
	if err != nil {
		t.Fatal(err)
	}
	if clean.MakespanHours >= res.MakespanHours {
		t.Errorf("expiry must extend the makespan: clean %.3fh vs abandoned %.3fh",
			clean.MakespanHours, res.MakespanHours)
	}
}

// TestAbandonmentStreamDelivery: RunStream still delivers only HITs
// that produced assignments, and delivered assignments match Run's.
func TestAbandonmentStreamDelivery(t *testing.T) {
	mkRes := func() (*RunResult, map[string]int) {
		m := abandonMarket(13, 0.4)
		delivered := map[string]int{}
		res, err := m.RunStream(abandonGroup(12), func(hitID string, as []hit.Assignment) {
			delivered[hitID] += len(as)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, delivered
	}
	res, delivered := mkRes()
	total := 0
	for _, n := range delivered {
		total += n
	}
	if total != res.TotalAssignments {
		t.Errorf("delivered %d assignments, result holds %d", total, res.TotalAssignments)
	}
	for id, n := range delivered {
		if n == 0 {
			t.Errorf("HIT %s delivered with zero assignments", id)
		}
		_ = id
	}
}
