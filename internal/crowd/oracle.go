// Package crowd simulates a crowdsourcing marketplace (the paper's
// Mechanical Turk substrate). The simulator reproduces the error-
// generating processes the paper measures on the live crowd: imperfect
// workers, spammers who do minimal work, worker bias, ambiguity-driven
// disagreement, Zipfian work distribution across workers, latency that
// depends on batch size and HIT-group attractiveness, straggler tails,
// and outright refusal of over-large batches.
//
// Ground truth comes from an Oracle that datasets implement; workers
// never see the oracle directly — their answers are truth plus a model
// of human error.
package crowd

import (
	"qurk/internal/relation"
)

// Oracle supplies the latent ground truth the simulated workers perceive
// (imperfectly). Each dataset in internal/dataset implements it.
//
// Concurrency contract: SimMarket simulates HITs on a worker pool, so
// every Oracle method may be called from multiple goroutines at once.
// Implementations must be safe for concurrent reads — immutable state
// (the internal/dataset oracles precompute everything at construction)
// satisfies this trivially; lazy memoization needs its own locking.
type Oracle interface {
	// JoinMatch reports whether two tuples denote the same entity and
	// a difficulty in [0,1]: 0 = trivially distinguishable, 1 = workers
	// can only guess (e.g. lookalike celebrities, profile-vs-candid
	// shots).
	JoinMatch(left, right relation.Tuple) (match bool, difficulty float64)

	// FilterTruth reports the correct yes/no answer for filter task
	// taskName over t, with a difficulty like JoinMatch's.
	FilterTruth(taskName string, t relation.Tuple) (yes bool, difficulty float64)

	// FieldValue reports the categorical value a careful worker
	// perceives for one generative field, the per-field confusion rate
	// in [0,1] (hair color is confusable, gender rarely), and the legal
	// options. Perception is per-photo: a celebrity with dyed hair can
	// display different values in different photos, which is what makes
	// hair a bad feature filter in the paper (§3.3.4).
	FieldValue(taskName, field string, t relation.Tuple) (value string, confusion float64, options []string)

	// Score returns the latent scalar for compare/rate questions under
	// sort task taskName, plus sigma — the per-query subjective noise
	// (in units of the score range) that models query ambiguity: tiny
	// for square areas (Q1), moderate for animal size (Q2), large for
	// dangerousness (Q3), huge for "belongs on Saturn" (Q4), and
	// effectively infinite for the random control (Q5).
	Score(taskName string, t relation.Tuple) (score, sigma float64)

	// ScoreRange returns the dataset's [lo, hi] latent score range for
	// the task; workers calibrate ratings against it the way the
	// paper's context sample of 10 random items lets live workers
	// calibrate (§4.1.2).
	ScoreRange(taskName string) (lo, hi float64)
}

// StaticOracle is a convenience Oracle backed by maps, used by unit tests
// and the quickstart example. Keys are the Text() of a designated key
// column.
type StaticOracle struct {
	// KeyColumn is the tuple column identifying an item (default "id").
	KeyColumn string
	// Matches maps "leftKey|rightKey" to true for joining pairs.
	Matches map[string]bool
	// JoinDifficulty applies to all pairs.
	JoinDifficulty float64
	// Filters maps taskName|key to the correct boolean.
	Filters map[string]bool
	// FilterDifficulty applies to all filter questions.
	FilterDifficulty float64
	// FieldValues maps taskName|field|key to the perceived value.
	FieldValues map[string]string
	// FieldConfusion maps taskName|field to a confusion rate.
	FieldConfusion map[string]float64
	// FieldOptions maps taskName|field to legal values.
	FieldOptions map[string][]string
	// Scores maps taskName|key to the latent score.
	Scores map[string]float64
	// Sigmas maps taskName to the subjective noise level.
	Sigmas map[string]float64
	// Ranges maps taskName to [lo, hi].
	Ranges map[string][2]float64
}

func (o *StaticOracle) key(t relation.Tuple) string {
	col := o.KeyColumn
	if col == "" {
		col = "id"
	}
	v, ok := t.Get(col)
	if !ok {
		return t.String()
	}
	return v.Text()
}

// JoinMatch implements Oracle.
func (o *StaticOracle) JoinMatch(left, right relation.Tuple) (bool, float64) {
	return o.Matches[o.key(left)+"|"+o.key(right)], o.JoinDifficulty
}

// FilterTruth implements Oracle.
func (o *StaticOracle) FilterTruth(taskName string, t relation.Tuple) (bool, float64) {
	return o.Filters[taskName+"|"+o.key(t)], o.FilterDifficulty
}

// FieldValue implements Oracle.
func (o *StaticOracle) FieldValue(taskName, field string, t relation.Tuple) (string, float64, []string) {
	return o.FieldValues[taskName+"|"+field+"|"+o.key(t)],
		o.FieldConfusion[taskName+"|"+field],
		o.FieldOptions[taskName+"|"+field]
}

// Score implements Oracle.
func (o *StaticOracle) Score(taskName string, t relation.Tuple) (float64, float64) {
	return o.Scores[taskName+"|"+o.key(t)], o.Sigmas[taskName]
}

// ScoreRange implements Oracle.
func (o *StaticOracle) ScoreRange(taskName string) (float64, float64) {
	r, ok := o.Ranges[taskName]
	if !ok {
		return 0, 1
	}
	return r[0], r[1]
}
