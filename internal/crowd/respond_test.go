package crowd

import (
	"math/rand"
	"testing"

	"qurk/internal/hit"
)

func TestSpamBoolStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	minimal := &Worker{IsSpammer: true, Strategy: SpamMinimal}
	for i := 0; i < 20; i++ {
		if spamBool(minimal, rng) {
			t.Fatal("minimal spammer answered yes")
		}
	}
	random := &Worker{IsSpammer: true, Strategy: SpamRandom}
	yes := 0
	for i := 0; i < 500; i++ {
		if spamBool(random, rng) {
			yes++
		}
	}
	if yes < 180 || yes > 320 {
		t.Errorf("random spammer yes rate = %d/500, want ≈250", yes)
	}
}

func TestAnswerRateClamping(t *testing.T) {
	oracle := &pairOracle{sigma: 0, n: 10}
	rng := rand.New(rand.NewSource(2))
	// Extreme bias pushes raw ratings far out of range; answers must
	// stay within [1, scale].
	w := &Worker{Skill: 0.9, RatingSlope: 1, NoiseMult: 1, RatingBias: 100}
	q := &hit.Question{ID: "q", Kind: hit.RateQ, Task: "sort", Tuple: item("i0"), Scale: 7}
	for i := 0; i < 50; i++ {
		r := answerRate(w, q, oracle, respondConfig{ratingNoise: 0.5}, rng).Rating
		if r != 7 {
			t.Fatalf("rating %d with +100 bias, want clamp at 7", r)
		}
	}
	w.RatingBias = -100
	for i := 0; i < 50; i++ {
		if r := answerRate(w, q, oracle, respondConfig{ratingNoise: 0.5}, rng).Rating; r != 1 {
			t.Fatalf("rating %d with -100 bias, want clamp at 1", r)
		}
	}
}

func TestAnswerFilterSpamAndDifficulty(t *testing.T) {
	oracle := &pairOracle{difficulty: 0, n: 10}
	rng := rand.New(rand.NewSource(3))
	good := &Worker{Skill: 0.95}
	q := &hit.Question{ID: "q", Kind: hit.FilterQ, Task: "f", Tuple: item("i0")} // truth: i0 even → yes
	correct := 0
	for i := 0; i < 300; i++ {
		if answerFilter(good, q, oracle, 1, rng).Bool {
			correct++
		}
	}
	if correct < 260 {
		t.Errorf("skilled filter accuracy = %d/300", correct)
	}
	// Impossible difficulty → coin flip.
	hard := &pairOracle{difficulty: 1, n: 10}
	correct = 0
	for i := 0; i < 600; i++ {
		if answerFilter(good, q, hard, 1, rng).Bool {
			correct++
		}
	}
	if correct < 240 || correct > 360 {
		t.Errorf("impossible-task yes rate = %d/600, want ≈300", correct)
	}
}

func TestRespondDispatch(t *testing.T) {
	oracle := &pairOracle{n: 10}
	rng := rand.New(rand.NewSource(4))
	w := &Worker{Skill: 0.9, RatingSlope: 1, NoiseMult: 1}
	cfg := respondConfig{ratingNoise: 0.5}
	cases := []hit.Question{
		{ID: "f", Kind: hit.FilterQ, Task: "t", Tuple: item("i0")},
		{ID: "g", Kind: hit.GenerativeQ, Task: "t", Tuple: item("i0"), Fields: []string{"color"}},
		{ID: "p", Kind: hit.JoinPairQ, Task: "t", Left: item("i0"), Right: item("i0")},
		{ID: "r", Kind: hit.RateQ, Task: "t", Tuple: item("i0"), Scale: 7},
	}
	for _, q := range cases {
		ans := respond(w, &q, oracle, cfg, 1, rng)
		if ans.QuestionID != q.ID {
			t.Errorf("kind %v: answer ID %q", q.Kind, ans.QuestionID)
		}
	}
	// Unknown kind yields an empty answer, not a panic.
	weird := hit.Question{ID: "w", Kind: hit.Kind(99)}
	if got := respond(w, &weird, oracle, cfg, 1, rng); got.QuestionID != "w" {
		t.Error("unknown kind mishandled")
	}
}

func TestEffortModel(t *testing.T) {
	mk := func(qs ...hit.Question) *hit.HIT { return &hit.HIT{ID: "h", Assignments: 5, Questions: qs} }
	// Five filters = 5 units.
	filters := make([]hit.Question, 5)
	for i := range filters {
		filters[i] = hit.Question{ID: "q", Kind: hit.FilterQ}
	}
	if e := effort(mk(filters...)); e != 5 {
		t.Errorf("filter effort = %v", e)
	}
	// Compare group of 8: 8·log2(8)/2 = 12.
	cq := hit.Question{ID: "q", Kind: hit.CompareQ}
	for i := 0; i < 8; i++ {
		cq.Items = append(cq.Items, item("i0"))
	}
	if e := effort(mk(cq)); e < 11.9 || e > 12.1 {
		t.Errorf("compare-8 effort = %v, want 12", e)
	}
	// Generative with 3 fields: 0.5 + 1.5 = 2.
	gq := hit.Question{ID: "q", Kind: hit.GenerativeQ, Fields: []string{"a", "b", "c"}}
	if e := effort(mk(gq)); e != 2 {
		t.Errorf("generative effort = %v", e)
	}
}
