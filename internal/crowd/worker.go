package crowd

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
)

// SpamStrategy is how a spammer minimizes effort (paper §2.1: workers
// "attempt to game the marketplace by doing a minimal amount of work").
type SpamStrategy uint8

const (
	// SpamRandom answers uniformly at random.
	SpamRandom SpamStrategy = iota
	// SpamMinimal gives the least-effort answer: "no" on pair
	// questions, "no matches" on grids, a constant mid-scale rating,
	// and the identity order on comparisons.
	SpamMinimal
)

// Worker is one simulated Turker.
type Worker struct {
	// ID is stable across runs with the same seed.
	ID string
	// Skill is the probability of a correct binary judgment on an
	// unambiguous, unbatched task. The paper's Simple join trials
	// imply a population average around 0.78–0.85 (§3.3.2).
	Skill float64
	// IsSpammer marks minimal-effort workers.
	IsSpammer bool
	// Strategy applies when IsSpammer.
	Strategy SpamStrategy
	// RatingBias shifts this worker's Likert ratings (scale units).
	RatingBias float64
	// RatingSlope distorts this worker's mapping from latent score to
	// the rating scale (1 = faithful).
	RatingSlope float64
	// NoiseMult scales the subjective comparison noise for this worker
	// (1 = population typical).
	NoiseMult float64
	// Sloppiness is the extra per-unit error a worker accrues on
	// batched HITs; the paper observes batched schemes attract "workers
	// that quickly and inaccurately complete the tasks" (§3.3.2).
	Sloppiness float64
	// PickupWeight is the worker's propensity to grab tasks; drawn
	// from a Zipfian so "a small number of workers complete a large
	// fraction of the work" (§3.3.3).
	PickupWeight float64
	// TasksDone counts assignments completed in this simulation; used
	// for the §3.3.3 accuracy-vs-work regression. Incremented
	// atomically — HITs simulate in parallel.
	TasksDone int64
}

// effectiveAccuracy is the worker's per-judgment accuracy on a HIT whose
// questions carry the given difficulty and batch size (units of work).
// Difficulty linearly interpolates between full skill and a coin flip;
// batching subtracts sloppiness per extra unit, floored at chance.
func (w *Worker) effectiveAccuracy(difficulty float64, units int) float64 {
	p := 0.5 + (w.Skill-0.5)*(1-clamp01(difficulty))
	if units > 1 {
		p -= w.Sloppiness * float64(units-1)
	}
	if p < 0.5 {
		p = 0.5
	}
	if p > 0.995 {
		p = 0.995
	}
	return p
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Population is the simulated worker pool. Sampling is read-only and
// safe for concurrent use from parallel HIT simulations: cumulative
// pickup-weight tables are computed per (affinity, ban-version) and
// cached, never mutated in place, so concurrent SampleDistinct calls
// share nothing but immutable snapshots.
type Population struct {
	// Workers is the full pool, in generation order.
	Workers []*Worker

	mu     sync.RWMutex
	banned map[string]bool
	banVer uint64   // bumped on every Ban; invalidates cached tables
	cums   sync.Map // cumKey → []float64, immutable once stored
}

// cumKey identifies one cached cumulative-weight table.
type cumKey struct {
	affinity float64
	version  uint64
}

// PopulationConfig controls worker generation.
type PopulationConfig struct {
	// Size is the number of workers (default 150).
	Size int
	// MeanSkill and SkillStd parametrize the truncated-normal skill
	// distribution (defaults 0.83, 0.09 — calibrated so the average
	// Simple-join worker lands near the paper's 78% true-positive rate
	// once pair difficulty is applied).
	MeanSkill, SkillStd float64
	// SpamFraction is the share of spammers (default 0.08).
	SpamFraction float64
	// ZipfS is the Zipf exponent for pickup weights (default 1.3).
	ZipfS float64
	// RatingBiasStd is the std dev of per-worker rating bias in scale
	// units (default 0.9).
	RatingBiasStd float64
	// RatingSlopeStd is the std dev of the rating slope around 1
	// (default 0.12).
	RatingSlopeStd float64
	// SloppinessMean is the mean per-extra-unit accuracy loss on
	// batched HITs (default 0.004).
	SloppinessMean float64
}

func (c *PopulationConfig) fillDefaults() {
	if c.Size == 0 {
		c.Size = 150
	}
	if c.MeanSkill == 0 {
		c.MeanSkill = 0.83
	}
	if c.SkillStd == 0 {
		c.SkillStd = 0.09
	}
	if c.SpamFraction == 0 {
		c.SpamFraction = 0.08
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.3
	}
	if c.RatingBiasStd == 0 {
		c.RatingBiasStd = 0.9
	}
	if c.RatingSlopeStd == 0 {
		c.RatingSlopeStd = 0.12
	}
	if c.SloppinessMean == 0 {
		c.SloppinessMean = 0.004
	}
}

// NewPopulation generates a deterministic worker pool from the seed.
func NewPopulation(cfg PopulationConfig, rng *rand.Rand) *Population {
	cfg.fillDefaults()
	p := &Population{Workers: make([]*Worker, cfg.Size)}
	for i := range p.Workers {
		skill := cfg.MeanSkill + rng.NormFloat64()*cfg.SkillStd
		if skill < 0.55 {
			skill = 0.55
		}
		if skill > 0.98 {
			skill = 0.98
		}
		w := &Worker{
			ID:           fmt.Sprintf("w%04d", i),
			Skill:        skill,
			RatingBias:   rng.NormFloat64() * cfg.RatingBiasStd,
			RatingSlope:  1 + rng.NormFloat64()*cfg.RatingSlopeStd,
			NoiseMult:    math.Exp(rng.NormFloat64() * 0.25),
			Sloppiness:   math.Abs(rng.NormFloat64()) * cfg.SloppinessMean,
			PickupWeight: 1 / math.Pow(float64(i+1), cfg.ZipfS),
		}
		// The top pickup decile is exempt from spam: prolific Turkers
		// carry reputations (paper §6) and requesters ban obvious
		// spammers, so spam concentrates in the long tail of workers.
		if i >= cfg.Size/10 && rng.Float64() < cfg.SpamFraction {
			w.IsSpammer = true
			if rng.Float64() < 0.5 {
				w.Strategy = SpamRandom
			} else {
				w.Strategy = SpamMinimal
			}
		}
		p.Workers[i] = w
	}
	return p
}

// cumFor returns the cumulative sampling-weight table for the given
// spammer affinity (≥ 1 multiplies spammer weights — batched HIT groups
// attract minimal-effort workers, §3.3.2). Banned workers get zero
// weight. Tables are immutable and cached per (affinity, ban-version).
// Caller must hold p.mu at least for reading.
func (p *Population) cumFor(spamAffinity float64) []float64 {
	key := cumKey{affinity: spamAffinity, version: p.banVer}
	if v, ok := p.cums.Load(key); ok {
		return v.([]float64)
	}
	cum := make([]float64, len(p.Workers))
	total := 0.0
	for i, w := range p.Workers {
		weight := w.PickupWeight
		if w.IsSpammer {
			weight *= spamAffinity
		}
		if p.banned[w.ID] {
			weight = 0
		}
		total += weight
		cum[i] = total
	}
	p.cums.Store(key, cum)
	return cum
}

// Ban excludes a worker from future task pickup — the paper's §6
// suggestion to "use the output of the QA algorithm to ban Turkers found
// to produce poor results, reducing future costs".
func (p *Population) Ban(workerID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.banned == nil {
		p.banned = map[string]bool{}
	}
	if !p.banned[workerID] {
		p.banned[workerID] = true
		p.banVer++
		// Tables for older ban-versions are unreachable now; evict
		// them so repeated bans don't grow the cache without bound.
		p.cums.Range(func(k, _ any) bool {
			if k.(cumKey).version != p.banVer {
				p.cums.Delete(k)
			}
			return true
		})
	}
}

// Unban restores a previously banned worker to the pickup pool —
// the simulator-side mirror of MTurk's DeleteWorkerBlock.
func (p *Population) Unban(workerID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.banned[workerID] {
		delete(p.banned, workerID)
		p.banVer++
		p.cums.Range(func(k, _ any) bool {
			if k.(cumKey).version != p.banVer {
				p.cums.Delete(k)
			}
			return true
		})
	}
}

// Banned reports whether a worker is banned.
func (p *Population) Banned(workerID string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.banned[workerID]
}

// BannedCount returns how many workers are banned.
func (p *Population) BannedCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.banned)
}

// AvailableCount returns how many workers are eligible for pickup.
func (p *Population) AvailableCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.Workers) - len(p.banned)
}

// SampleDistinct draws n distinct workers weighted by pickup propensity,
// with the given spammer affinity. Banned workers are never drawn. If n
// exceeds the available population, every unbanned worker is returned.
// The call mutates nothing shared — concurrent samples with independent
// RNGs are deterministic per caller.
func (p *Population) SampleDistinct(n int, spamAffinity float64, rng *rand.Rand) []*Worker {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if n >= len(p.Workers)-len(p.banned) {
		out := make([]*Worker, 0, len(p.Workers))
		for _, w := range p.Workers {
			if !p.banned[w.ID] {
				out = append(out, w)
			}
		}
		return out
	}
	cum := p.cumFor(spamAffinity)
	chosen := make(map[int]bool, n)
	out := make([]*Worker, 0, n)
	total := cum[len(cum)-1]
	for len(out) < n {
		x := rng.Float64() * total
		i := searchCum(cum, x)
		if chosen[i] || p.banned[p.Workers[i].ID] {
			// Linear probe to the next eligible worker keeps sampling
			// O(n) without rebuilding weights after each draw.
			for chosen[i] || p.banned[p.Workers[i].ID] {
				i = (i + 1) % len(p.Workers)
			}
		}
		chosen[i] = true
		out = append(out, p.Workers[i])
	}
	return out
}

func searchCum(cum []float64, x float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ResetTaskCounts zeroes per-worker completion counters between
// experiments.
func (p *Population) ResetTaskCounts() {
	for _, w := range p.Workers {
		atomic.StoreInt64(&w.TasksDone, 0)
	}
}
