package crowd

import (
	"math/rand"
	"testing"

	"qurk/internal/hit"
)

func TestBanExcludesWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewPopulation(PopulationConfig{Size: 30}, rng)
	p.Ban("w0003")
	p.Ban("w0007")
	if !p.Banned("w0003") || p.Banned("w0001") {
		t.Fatal("ban bookkeeping wrong")
	}
	if p.BannedCount() != 2 {
		t.Fatalf("banned count = %d", p.BannedCount())
	}
	for i := 0; i < 200; i++ {
		for _, w := range p.SampleDistinct(10, 1, rng) {
			if w.ID == "w0003" || w.ID == "w0007" {
				t.Fatalf("banned worker %s sampled", w.ID)
			}
		}
	}
	// Oversampling returns only unbanned workers.
	all := p.SampleDistinct(100, 1, rng)
	if len(all) != 28 {
		t.Fatalf("oversample = %d, want 28", len(all))
	}
}

// TestBanSpammersImprovesAccuracy exercises the paper's §6 workflow:
// identify spammers with QualityAdjust on one run, ban them, and observe
// cleaner votes on the next run.
func TestBanSpammersImprovesAccuracy(t *testing.T) {
	oracle := &pairOracle{difficulty: 0.25, n: 1000}
	cfg := DefaultConfig(77)
	cfg.Population.SpamFraction = 0.2
	m := NewSimMarket(cfg, oracle)

	spamShare := func(res *RunResult) float64 {
		byID := map[string]*Worker{}
		for _, w := range m.Population().Workers {
			byID[w.ID] = w
		}
		spam := 0
		for _, a := range res.Assignments {
			if byID[a.WorkerID].IsSpammer {
				spam++
			}
		}
		return float64(spam) / float64(len(res.Assignments))
	}

	res1, err := m.Run(buildPairHITs(150, 5))
	if err != nil {
		t.Fatal(err)
	}
	before := spamShare(res1)

	// Ban every known spammer (in production this comes from
	// QualityAdjust's worker-quality scores; see the combine tests).
	for _, w := range m.Population().Workers {
		if w.IsSpammer {
			m.Population().Ban(w.ID)
		}
	}
	g2 := buildPairHITs(150, 5)
	g2.ID = "g2"
	for _, h := range g2.HITs {
		h.ID = "g2/" + h.ID
	}
	res2, err := m.Run(g2)
	if err != nil {
		t.Fatal(err)
	}
	after := spamShare(res2)
	if before == 0 {
		t.Skip("no spam assignments drawn in the first run")
	}
	if after != 0 {
		t.Errorf("spam share after banning = %.3f, want 0 (before %.3f)", after, before)
	}
}

func TestBannedWorkersDontBlockValidation(t *testing.T) {
	oracle := &pairOracle{difficulty: 0.1, n: 100}
	m := NewSimMarket(DefaultConfig(5), oracle)
	// Ban most of the pool; runs still complete with the remainder.
	for i, w := range m.Population().Workers {
		if i%2 == 0 {
			m.Population().Ban(w.ID)
		}
	}
	res, err := m.Run(buildPairHITs(20, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAssignments != 100 {
		t.Errorf("assignments = %d, want 100", res.TotalAssignments)
	}
	for _, a := range res.Assignments {
		if m.Population().Banned(a.WorkerID) {
			t.Fatalf("banned worker %s completed an assignment", a.WorkerID)
		}
	}
	_ = hit.SortAssignments
}
