package crowd

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"qurk/internal/hit"
	"qurk/internal/relation"
)

var itemSchema = relation.MustSchema(
	relation.Column{Name: "id", Kind: relation.KindText},
	relation.Column{Name: "img", Kind: relation.KindURL},
)

func item(id string) relation.Tuple {
	return relation.MustTuple(itemSchema, relation.Text(id), relation.URL("http://x/"+id))
}

// pairOracle joins items with equal ids; scores items by numeric suffix.
type pairOracle struct {
	difficulty float64
	sigma      float64
	n          int
}

func (o *pairOracle) JoinMatch(l, r relation.Tuple) (bool, float64) {
	return l.MustGet("id").Text() == r.MustGet("id").Text(), o.difficulty
}
func (o *pairOracle) FilterTruth(task string, t relation.Tuple) (bool, float64) {
	var i int
	fmt.Sscanf(t.MustGet("id").Text(), "i%d", &i)
	return i%2 == 0, o.difficulty
}
func (o *pairOracle) FieldValue(task, field string, t relation.Tuple) (string, float64, []string) {
	var i int
	fmt.Sscanf(t.MustGet("id").Text(), "i%d", &i)
	opts := []string{"red", "green", "blue", "UNKNOWN"}
	return opts[i%3], 0.1, opts
}
func (o *pairOracle) Score(task string, t relation.Tuple) (float64, float64) {
	var i int
	fmt.Sscanf(t.MustGet("id").Text(), "i%d", &i)
	return float64(i), o.sigma
}
func (o *pairOracle) ScoreRange(task string) (float64, float64) {
	return 0, float64(o.n - 1)
}

func TestPopulationDeterminism(t *testing.T) {
	cfg := PopulationConfig{}
	p1 := NewPopulation(cfg, rand.New(rand.NewSource(1)))
	p2 := NewPopulation(cfg, rand.New(rand.NewSource(1)))
	if len(p1.Workers) != 150 {
		t.Fatalf("default size = %d", len(p1.Workers))
	}
	for i := range p1.Workers {
		if p1.Workers[i].Skill != p2.Workers[i].Skill ||
			p1.Workers[i].IsSpammer != p2.Workers[i].IsSpammer {
			t.Fatalf("worker %d differs across same-seed populations", i)
		}
	}
	p3 := NewPopulation(cfg, rand.New(rand.NewSource(2)))
	same := true
	for i := range p1.Workers {
		if p1.Workers[i].Skill != p3.Workers[i].Skill {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical populations")
	}
}

func TestPopulationSkillDistribution(t *testing.T) {
	p := NewPopulation(PopulationConfig{Size: 2000}, rand.New(rand.NewSource(3)))
	var sum float64
	spam := 0
	for _, w := range p.Workers {
		if w.Skill < 0.55 || w.Skill > 0.98 {
			t.Fatalf("skill %v out of clamp range", w.Skill)
		}
		sum += w.Skill
		if w.IsSpammer {
			spam++
		}
	}
	mean := sum / 2000
	if math.Abs(mean-0.83) > 0.02 {
		t.Errorf("mean skill = %v, want ≈0.83", mean)
	}
	frac := float64(spam) / 2000
	if math.Abs(frac-0.08) > 0.03 {
		t.Errorf("spam fraction = %v, want ≈0.08", frac)
	}
}

func TestSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewPopulation(PopulationConfig{Size: 50}, rng)
	ws := p.SampleDistinct(10, 1, rng)
	if len(ws) != 10 {
		t.Fatalf("sampled %d, want 10", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.ID] {
			t.Fatalf("duplicate worker %s", w.ID)
		}
		seen[w.ID] = true
	}
	// Requesting more than population returns everyone.
	if got := p.SampleDistinct(100, 1, rng); len(got) != 50 {
		t.Errorf("oversample = %d, want 50", len(got))
	}
}

func TestZipfianPickup(t *testing.T) {
	// Top-decile workers should take a large share of assignments.
	rng := rand.New(rand.NewSource(5))
	p := NewPopulation(PopulationConfig{Size: 100, SpamFraction: 1e-9}, rng)
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		for _, w := range p.SampleDistinct(5, 1, rng) {
			counts[w.ID]++
		}
	}
	topShare := 0
	for i := 0; i < 10; i++ {
		topShare += counts[fmt.Sprintf("w%04d", i)]
	}
	frac := float64(topShare) / 10000
	if frac < 0.4 {
		t.Errorf("top-10 workers did %.2f of work, want Zipfian concentration ≥0.4", frac)
	}
}

func TestSpamAffinityShiftsPickup(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := NewPopulation(PopulationConfig{Size: 200, SpamFraction: 0.10}, rng)
	spamShare := func(affinity float64) float64 {
		spam, total := 0, 0
		for i := 0; i < 800; i++ {
			for _, w := range p.SampleDistinct(5, affinity, rng) {
				total++
				if w.IsSpammer {
					spam++
				}
			}
		}
		return float64(spam) / float64(total)
	}
	low := spamShare(1)
	high := spamShare(5)
	if high <= low {
		t.Errorf("spam share did not grow with affinity: %.3f -> %.3f", low, high)
	}
}

func TestEffectiveAccuracy(t *testing.T) {
	w := &Worker{Skill: 0.9, Sloppiness: 0.01}
	if got := w.effectiveAccuracy(0, 1); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("easy unbatched = %v", got)
	}
	// Full difficulty → coin flip.
	if got := w.effectiveAccuracy(1, 1); got != 0.5 {
		t.Errorf("impossible task = %v, want 0.5", got)
	}
	// Batching lowers accuracy.
	if w.effectiveAccuracy(0, 10) >= w.effectiveAccuracy(0, 1) {
		t.Error("batching should reduce accuracy")
	}
	// Floor at 0.5.
	if got := w.effectiveAccuracy(0, 1000); got != 0.5 {
		t.Errorf("floored accuracy = %v", got)
	}
}

func buildPairHITs(n int, assignments int) *hit.Group {
	b := hit.NewBuilder("g", assignments, 1)
	var qs []hit.Question
	for i := 0; i < n; i++ {
		// Half matches, half non-matches.
		l := item(fmt.Sprintf("i%d", i))
		r := l
		if i%2 == 1 {
			r = item(fmt.Sprintf("i%d-x", i))
		}
		qs = append(qs, hit.Question{Kind: hit.JoinPairQ, Task: "same", Left: l, Right: r})
	}
	hits, err := b.Merge(qs, 1)
	if err != nil {
		panic(err)
	}
	return &hit.Group{ID: "g", HITs: hits}
}

func TestSimMarketRunBasics(t *testing.T) {
	oracle := &pairOracle{difficulty: 0.1, n: 100}
	m := NewSimMarket(DefaultConfig(42), oracle)
	g := buildPairHITs(50, 5)
	res, err := m.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAssignments != 250 {
		t.Fatalf("assignments = %d, want 250", res.TotalAssignments)
	}
	if len(res.Incomplete) != 0 {
		t.Fatalf("incomplete = %v", res.Incomplete)
	}
	if res.MakespanHours <= 0 {
		t.Error("makespan should be positive")
	}
	// Every assignment answers every question of its HIT.
	byHIT := map[string]int{}
	for _, a := range res.Assignments {
		if len(a.Answers) != 1 {
			t.Fatalf("assignment answers = %d, want 1", len(a.Answers))
		}
		if a.SubmitHours <= 0 {
			t.Error("submit time must be positive")
		}
		byHIT[a.HITID]++
	}
	for id, n := range byHIT {
		if n != 5 {
			t.Errorf("hit %s has %d assignments, want 5", id, n)
		}
	}
}

func TestSimMarketDeterminism(t *testing.T) {
	oracle := &pairOracle{difficulty: 0.1, n: 100}
	run := func() *RunResult {
		m := NewSimMarket(DefaultConfig(7), oracle)
		res, err := m.Run(buildPairHITs(30, 5))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Assignments) != len(b.Assignments) {
		t.Fatal("lengths differ")
	}
	for i := range a.Assignments {
		x, y := a.Assignments[i], b.Assignments[i]
		if x.WorkerID != y.WorkerID || x.Answers[0].Bool != y.Answers[0].Bool || x.SubmitHours != y.SubmitHours {
			t.Fatalf("assignment %d differs: %+v vs %+v", i, x, y)
		}
	}
}

func TestSimMarketMajorityAccuracy(t *testing.T) {
	// With 5 assignments and easy pairs, per-question majority should
	// be near-perfect even though single workers err — the paper's
	// central observation about vote aggregation (§3.3.2).
	oracle := &pairOracle{difficulty: 0.1, n: 100}
	m := NewSimMarket(DefaultConfig(11), oracle)
	g := buildPairHITs(200, 5)
	res, err := m.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	yesVotes := map[string]int{}
	votes := map[string]int{}
	truth := map[string]bool{}
	for _, h := range g.HITs {
		q := h.Questions[0]
		match, _ := oracle.JoinMatch(q.Left, q.Right)
		truth[q.ID] = match
	}
	qByID := map[string]bool{}
	_ = qByID
	for _, a := range res.Assignments {
		for _, ans := range a.Answers {
			votes[ans.QuestionID]++
			if ans.Bool {
				yesVotes[ans.QuestionID]++
			}
		}
	}
	correct := 0
	for qid, want := range truth {
		got := yesVotes[qid]*2 > votes[qid]
		if got == want {
			correct++
		}
	}
	acc := float64(correct) / float64(len(truth))
	// Expected ≈0.92 for 5 votes at effective accuracy ≈0.8 with 8%
	// spammers; the paper's Table 1 uses 10 votes to get ≈0.99.
	if acc < 0.88 {
		t.Errorf("majority accuracy = %.3f, want ≥0.88", acc)
	}
}

func TestBatchRefusal(t *testing.T) {
	// A comparison group of 20 items exceeds the refusal effort —
	// reproducing the paper's stalled group-size-20 experiment.
	oracle := &pairOracle{sigma: 0.01, n: 20}
	m := NewSimMarket(DefaultConfig(13), oracle)
	items := make([]relation.Tuple, 20)
	for i := range items {
		items[i] = item(fmt.Sprintf("i%d", i))
	}
	b := hit.NewBuilder("g", 5, 1)
	hits, err := b.Merge([]hit.Question{{Kind: hit.CompareQ, Task: "sort", Items: items}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(&hit.Group{ID: "g", HITs: hits})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) != 1 {
		t.Fatalf("incomplete = %v, want the group-20 HIT refused", res.Incomplete)
	}
	if res.TotalAssignments != 0 {
		t.Error("refused HIT should produce no assignments")
	}
	// Group size 5 is fine.
	b2 := hit.NewBuilder("g2", 5, 1)
	hits2, _ := b2.Merge([]hit.Question{{Kind: hit.CompareQ, Task: "sort", Items: items[:5]}}, 1)
	res2, err := m.Run(&hit.Group{ID: "g2", HITs: hits2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Incomplete) != 0 || res2.TotalAssignments != 5 {
		t.Errorf("group-5 run: %+v", res2)
	}
}

func TestBatchingReducesLatency(t *testing.T) {
	// Same logical work, batched 10-per-HIT vs unbatched: batched must
	// complete faster (paper Fig. 4: "a reduction in HITs with batching
	// reduces latency").
	oracle := &pairOracle{difficulty: 0.1, n: 1000}
	mkGroup := func(batch int) *hit.Group {
		b := hit.NewBuilder("g", 5, 1)
		var qs []hit.Question
		for i := 0; i < 300; i++ {
			qs = append(qs, hit.Question{Kind: hit.JoinPairQ, Task: "same", Left: item(fmt.Sprintf("i%d", i)), Right: item(fmt.Sprintf("i%d", i))})
		}
		hits, err := b.Merge(qs, batch)
		if err != nil {
			t.Fatal(err)
		}
		return &hit.Group{ID: "g", HITs: hits}
	}
	m1 := NewSimMarket(DefaultConfig(17), oracle)
	slow, err := m1.Run(mkGroup(1))
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewSimMarket(DefaultConfig(17), oracle)
	fast, err := m2.Run(mkGroup(10))
	if err != nil {
		t.Fatal(err)
	}
	if fast.MakespanHours >= slow.MakespanHours {
		t.Errorf("batched makespan %.3f ≥ unbatched %.3f", fast.MakespanHours, slow.MakespanHours)
	}
}

func TestStragglerTail(t *testing.T) {
	// The slowest 5% of assignments should account for a large share of
	// the makespan (paper: "the last 50%% of wait time is spent
	// completing the last 5%% of tasks").
	oracle := &pairOracle{difficulty: 0.1, n: 1000}
	m := NewSimMarket(DefaultConfig(19), oracle)
	res, err := m.Run(buildPairHITs(400, 5))
	if err != nil {
		t.Fatal(err)
	}
	times := make([]float64, len(res.Assignments))
	for i, a := range res.Assignments {
		times[i] = a.SubmitHours
	}
	p95 := percentileOf(times, 0.95)
	if p95/res.MakespanHours > 0.75 {
		t.Errorf("p95/makespan = %.2f, want a heavy tail (≤0.75)", p95/res.MakespanHours)
	}
}

func percentileOf(xs []float64, p float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j-1] > cp[j]; j-- {
			cp[j-1], cp[j] = cp[j], cp[j-1]
		}
	}
	return cp[int(p*float64(len(cp)-1))]
}

func TestCompareAnswersRespectScores(t *testing.T) {
	// With tiny sigma, a good worker's group order matches the latent
	// order.
	oracle := &pairOracle{sigma: 0.001, n: 5}
	w := &Worker{ID: "w", Skill: 0.95, NoiseMult: 1, RatingSlope: 1}
	items := []relation.Tuple{item("i3"), item("i0"), item("i4"), item("i1"), item("i2")}
	q := &hit.Question{ID: "q", Kind: hit.CompareQ, Task: "sort", Items: items}
	rng := rand.New(rand.NewSource(23))
	ans := answerCompare(w, q, oracle, rng)
	want := []int{1, 3, 4, 0, 2} // items sorted by score: i0,i1,i2,i3,i4
	for i, idx := range ans.Order {
		if idx != want[i] {
			t.Fatalf("order = %v, want %v", ans.Order, want)
		}
	}
}

func TestRateAnswersTrackScores(t *testing.T) {
	oracle := &pairOracle{sigma: 0.02, n: 10}
	w := &Worker{ID: "w", Skill: 0.9, NoiseMult: 1, RatingSlope: 1}
	rng := rand.New(rand.NewSource(29))
	low, high := 0.0, 0.0
	for i := 0; i < 200; i++ {
		lowQ := &hit.Question{ID: "l", Kind: hit.RateQ, Task: "sort", Tuple: item("i0"), Scale: 7}
		highQ := &hit.Question{ID: "h", Kind: hit.RateQ, Task: "sort", Tuple: item("i9"), Scale: 7}
		low += float64(answerRate(w, lowQ, oracle, respondConfig{ratingNoise: 0.5}, rng).Rating)
		high += float64(answerRate(w, highQ, oracle, respondConfig{ratingNoise: 0.5}, rng).Rating)
	}
	if high/200 <= low/200+2 {
		t.Errorf("mean ratings: low=%.2f high=%.2f, want clear separation", low/200, high/200)
	}
}

func TestSpammerAnswers(t *testing.T) {
	oracle := &pairOracle{n: 10}
	rng := rand.New(rand.NewSource(31))
	minimal := &Worker{ID: "s", IsSpammer: true, Strategy: SpamMinimal}
	pairQ := &hit.Question{ID: "q", Kind: hit.JoinPairQ, Task: "same", Left: item("i1"), Right: item("i1")}
	if answerJoinPair(minimal, pairQ, oracle, 1, rng).Bool {
		t.Error("minimal spammer should answer no")
	}
	gridQ := &hit.Question{ID: "g", Kind: hit.JoinGridQ, Task: "same",
		LeftItems: []relation.Tuple{item("i1")}, RightItems: []relation.Tuple{item("i1")}}
	if got := answerJoinGrid(minimal, gridQ, oracle, 1, rng); len(got.Pairs) != 0 {
		t.Error("minimal spammer should select no pairs")
	}
	rateQ := &hit.Question{ID: "r", Kind: hit.RateQ, Task: "sort", Tuple: item("i1"), Scale: 7}
	if got := answerRate(minimal, rateQ, oracle, respondConfig{}, rng); got.Rating != 4 {
		t.Errorf("minimal spammer rating = %d, want 4", got.Rating)
	}
	cmpQ := &hit.Question{ID: "c", Kind: hit.CompareQ, Task: "sort",
		Items: []relation.Tuple{item("i2"), item("i0"), item("i1")}}
	got := answerCompare(minimal, cmpQ, oracle, rng)
	for i, idx := range got.Order {
		if idx != i {
			t.Errorf("minimal spammer order = %v, want identity", got.Order)
		}
	}
}

func TestGenerativeAnswers(t *testing.T) {
	oracle := &pairOracle{n: 10}
	rng := rand.New(rand.NewSource(37))
	w := &Worker{ID: "w", Skill: 0.95, RatingSlope: 1, NoiseMult: 1}
	q := &hit.Question{ID: "q", Kind: hit.GenerativeQ, Task: "color", Tuple: item("i0"), Fields: []string{"color"}}
	correct := 0
	for i := 0; i < 300; i++ {
		ans := answerGenerative(w, q, oracle, respondConfig{combinedConfusionFactor: 0.55, unknownShare: 0.15}, 1, rng)
		if ans.Fields["color"] == "red" { // i0 → opts[0] = red
			correct++
		}
	}
	// Confusion 0.1 × (1.5-0.95) ≈ 0.055 error rate.
	if correct < 250 {
		t.Errorf("correct %d/300, want ≥250", correct)
	}
	// Combined interface should err less than separate.
	qc := &hit.Question{ID: "q", Kind: hit.GenerativeQ, Task: "color+other", Tuple: item("i0"), Fields: []string{"color"}}
	sep, comb := 0, 0
	for i := 0; i < 2000; i++ {
		if answerGenerative(w, q, oracle, respondConfig{combinedConfusionFactor: 0.3, unknownShare: 0}, 1, rng).Fields["color"] != "red" {
			sep++
		}
		if answerGenerative(w, qc, oracle, respondConfig{combinedConfusionFactor: 0.3, unknownShare: 0}, 1, rng).Fields["color"] != "red" {
			comb++
		}
	}
	if comb >= sep {
		t.Errorf("combined errors %d ≥ separate errors %d", comb, sep)
	}
}

func TestRunValidation(t *testing.T) {
	oracle := &pairOracle{n: 10}
	m := NewSimMarket(DefaultConfig(1), oracle)
	res, err := m.Run(nil)
	if err != nil || res.TotalAssignments != 0 {
		t.Errorf("nil group: %v, %v", res, err)
	}
	bad := &hit.Group{ID: "g", HITs: []*hit.HIT{{ID: "", Assignments: 5}}}
	if _, err := m.Run(bad); err == nil {
		t.Error("invalid HIT accepted")
	}
}

func TestRunAll(t *testing.T) {
	oracle := &pairOracle{difficulty: 0.1, n: 100}
	m := NewSimMarket(DefaultConfig(41), oracle)
	g1 := buildPairHITs(10, 5)
	g2 := buildPairHITs(10, 5)
	g2.ID = "g2"
	res, err := m.RunAll(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAssignments != 100 {
		t.Errorf("total = %d, want 100", res.TotalAssignments)
	}
}
