package crowd

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"qurk/internal/hit"
)

// Marketplace is the abstraction Qurk's operators post work to. The
// simulator below implements it; a live MTurk client would too (the
// paper's "declarative interface enables platform independence", §1).
type Marketplace interface {
	// Run posts one HIT group and blocks until every assignment
	// completes or is refused.
	Run(group *hit.Group) (*RunResult, error)
}

// RunResult is the outcome of posting a HIT group.
type RunResult struct {
	// Assignments holds every completed assignment with submit times.
	Assignments []hit.Assignment
	// Incomplete lists HIT IDs workers refused to complete (batch too
	// large for the price — paper §4.2.2's group-size-20 experiment and
	// §6 "we found batch sizes at which workers refused to perform
	// tasks").
	Incomplete []string
	// MakespanHours is the time the last assignment completed.
	MakespanHours float64
	// TotalAssignments counts completed assignments.
	TotalAssignments int
}

// Config parametrizes the simulated marketplace.
type Config struct {
	// Seed makes the simulation deterministic.
	Seed int64
	// Population configures the worker pool.
	Population PopulationConfig
	// AssignmentsPerHour is the base marketplace throughput for
	// effortless HITs (default 2500; calibrated so a 30×30 unbatched
	// celebrity join lands in the paper's ~1.5–2 hour range).
	AssignmentsPerHour float64
	// TimeOfDayFactor scales throughput (the paper ran morning and
	// evening trials and saw variance; default 1).
	TimeOfDayFactor float64
	// SlowdownEffort is the per-HIT effort (in unit-equivalents) at
	// which pickup starts to slow; beyond it the rate falls
	// quadratically (default 8).
	SlowdownEffort float64
	// RefusalEffort is the effort beyond which workers refuse the HIT
	// entirely at this price (default 30; a group-size-20 comparison
	// exceeds it, reproducing the paper's stalled experiment).
	RefusalEffort float64
	// StragglerFrac is the tail fraction of assignments that complete
	// slowly (default 0.05).
	StragglerFrac float64
	// StragglerSlowdown stretches the tail (default 20; makes the last
	// 5% of tasks consume roughly half the wall clock, as in Fig. 4).
	StragglerSlowdown float64
	// SpamBatchAffinityPerUnit grows spammer pickup weight per extra
	// unit of batched work (default 0.35).
	SpamBatchAffinityPerUnit float64
	// CombinedConfusionFactor scales feature confusion in combined
	// interfaces (default 0.55).
	CombinedConfusionFactor float64
	// RatingNoise is per-rating Gaussian noise in Likert units
	// (default 0.55).
	RatingNoise float64
	// RateExtraSigma is additional perceptual noise (in units of the
	// score range) that applies only to rating questions: judging an
	// item in isolation is harder than comparing items side by side,
	// which is why the paper's Rate reaches τ ≈ 0.78 on squares whose
	// Compare is perfect (§4.2.2). Default 0.28.
	RateExtraSigma float64
	// UnknownShare is the fraction of feature errors reported as
	// UNKNOWN when allowed (default 0.15).
	UnknownShare float64
	// GroupRampAssignments softens throughput for small groups: tiny
	// groups are less attractive to Turkers (default 20).
	GroupRampAssignments float64
}

// DefaultConfig returns the calibrated defaults described above.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                     seed,
		AssignmentsPerHour:       2500,
		TimeOfDayFactor:          1,
		SlowdownEffort:           8,
		RefusalEffort:            30,
		StragglerFrac:            0.05,
		StragglerSlowdown:        20,
		SpamBatchAffinityPerUnit: 0.35,
		CombinedConfusionFactor:  0.55,
		RatingNoise:              0.55,
		RateExtraSigma:           0.28,
		UnknownShare:             0.15,
		GroupRampAssignments:     20,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig(c.Seed)
	if c.AssignmentsPerHour == 0 {
		c.AssignmentsPerHour = d.AssignmentsPerHour
	}
	if c.TimeOfDayFactor == 0 {
		c.TimeOfDayFactor = d.TimeOfDayFactor
	}
	if c.SlowdownEffort == 0 {
		c.SlowdownEffort = d.SlowdownEffort
	}
	if c.RefusalEffort == 0 {
		c.RefusalEffort = d.RefusalEffort
	}
	if c.StragglerFrac == 0 {
		c.StragglerFrac = d.StragglerFrac
	}
	if c.StragglerSlowdown == 0 {
		c.StragglerSlowdown = d.StragglerSlowdown
	}
	if c.SpamBatchAffinityPerUnit == 0 {
		c.SpamBatchAffinityPerUnit = d.SpamBatchAffinityPerUnit
	}
	if c.CombinedConfusionFactor == 0 {
		c.CombinedConfusionFactor = d.CombinedConfusionFactor
	}
	if c.RatingNoise == 0 {
		c.RatingNoise = d.RatingNoise
	}
	if c.RateExtraSigma == 0 {
		c.RateExtraSigma = d.RateExtraSigma
	}
	if c.UnknownShare == 0 {
		c.UnknownShare = d.UnknownShare
	}
	if c.GroupRampAssignments == 0 {
		c.GroupRampAssignments = d.GroupRampAssignments
	}
}

// SimMarket is the simulated marketplace. It is safe for concurrent Run
// calls (a mutex serializes them so the RNG stream stays deterministic
// given a fixed call order).
type SimMarket struct {
	mu     sync.Mutex
	cfg    Config
	oracle Oracle
	pop    *Population
	rng    *rand.Rand
}

// NewSimMarket builds a marketplace over the oracle's ground truth.
func NewSimMarket(cfg Config, oracle Oracle) *SimMarket {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &SimMarket{
		cfg:    cfg,
		oracle: oracle,
		pop:    NewPopulation(cfg.Population, rng),
		rng:    rng,
	}
}

// Population exposes the worker pool (experiments regress accuracy
// against per-worker task counts, §3.3.3).
func (m *SimMarket) Population() *Population { return m.pop }

// Oracle returns the ground-truth oracle (experiments score results
// against it).
func (m *SimMarket) Oracle() Oracle { return m.oracle }

// effort estimates how much work one HIT demands of a worker, in
// single-judgment equivalents. Comparison groups cost S·log₂(S)/2 —
// ranking needs more than S looks — and grid cells are cheaper than
// standalone pair judgments (clicking matches in context).
func effort(h *hit.HIT) float64 {
	var e float64
	for i := range h.Questions {
		q := &h.Questions[i]
		switch q.Kind {
		case hit.CompareQ:
			s := float64(len(q.Items))
			e += s * math.Log2(s) / 2
		case hit.JoinGridQ:
			e += 0.35 * float64(q.UnitCount())
		case hit.GenerativeQ:
			e += 0.5 + 0.5*float64(len(q.Fields))
		default:
			e += 1
		}
	}
	return e
}

// Run implements Marketplace.
func (m *SimMarket) Run(group *hit.Group) (*RunResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if group == nil || len(group.HITs) == 0 {
		return &RunResult{}, nil
	}
	res := &RunResult{}

	// Pass 1: refusal check and total completable assignments.
	type posting struct {
		h        *hit.HIT
		effort   float64
		slowdown float64
	}
	var postings []posting
	totalAssignments := 0
	for _, h := range group.HITs {
		if err := h.Validate(); err != nil {
			return nil, fmt.Errorf("crowd: %w", err)
		}
		e := effort(h)
		if e > m.cfg.RefusalEffort {
			res.Incomplete = append(res.Incomplete, h.ID)
			continue
		}
		slow := 1.0
		if e > m.cfg.SlowdownEffort {
			r := m.cfg.SlowdownEffort / e
			slow = r * r
		}
		postings = append(postings, posting{h: h, effort: e, slowdown: slow})
		totalAssignments += h.Assignments
	}
	if totalAssignments == 0 {
		return res, nil
	}

	// Group throughput: base rate scaled by time of day and by group
	// attractiveness (small groups draw fewer Turkers, §2.6).
	a := float64(totalAssignments)
	ramp := a / (a + m.cfg.GroupRampAssignments)
	rate := m.cfg.AssignmentsPerHour * m.cfg.TimeOfDayFactor * ramp
	baseMakespan := a / rate

	// Pass 2: assign workers and generate answers + latencies.
	rcfg := respondConfig{
		ratingNoise:             m.cfg.RatingNoise,
		rateExtraSigma:          m.cfg.RateExtraSigma,
		combinedConfusionFactor: m.cfg.CombinedConfusionFactor,
		unknownShare:            m.cfg.UnknownShare,
	}
	aid := 0
	for _, p := range postings {
		units := p.h.Units()
		affinity := 1 + m.cfg.SpamBatchAffinityPerUnit*float64(units-1)
		if affinity < 1 {
			affinity = 1
		}
		workers := m.pop.SampleDistinct(p.h.Assignments, affinity, m.rng)
		for _, w := range workers {
			aid++
			asn := hit.Assignment{
				ID:       fmt.Sprintf("%s/a%06d", group.ID, aid),
				HITID:    p.h.ID,
				WorkerID: w.ID,
			}
			for qi := range p.h.Questions {
				q := &p.h.Questions[qi]
				asn.Answers = append(asn.Answers, respond(w, q, m.oracle, rcfg, units, m.rng))
				w.TasksDone++
			}
			// Completion time: position u on the group's completion
			// curve, stretched through the straggler tail, divided by
			// this HIT's slowdown.
			u := m.rng.Float64()
			pos := u
			if u > 1-m.cfg.StragglerFrac {
				pos = (1 - m.cfg.StragglerFrac) + (u-(1-m.cfg.StragglerFrac))*m.cfg.StragglerSlowdown
			}
			t := baseMakespan * pos / p.slowdown
			// Small per-assignment jitter.
			t *= 1 + 0.1*m.rng.Float64()
			asn.SubmitHours = t
			if t > res.MakespanHours {
				res.MakespanHours = t
			}
			res.Assignments = append(res.Assignments, asn)
		}
	}
	res.TotalAssignments = len(res.Assignments)
	hit.SortAssignments(res.Assignments)
	return res, nil
}

// RunAll posts several groups in sequence and concatenates results; a
// convenience for operators that stage multiple phases.
func (m *SimMarket) RunAll(groups ...*hit.Group) (*RunResult, error) {
	out := &RunResult{}
	for _, g := range groups {
		r, err := m.Run(g)
		if err != nil {
			return nil, err
		}
		out.Assignments = append(out.Assignments, r.Assignments...)
		out.Incomplete = append(out.Incomplete, r.Incomplete...)
		out.TotalAssignments += r.TotalAssignments
		if r.MakespanHours > out.MakespanHours {
			out.MakespanHours = r.MakespanHours
		}
	}
	return out, nil
}
