package crowd

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"qurk/internal/hit"
)

// Marketplace is the abstraction Qurk's operators post work to. The
// simulator below implements it; a live MTurk client would too (the
// paper's "declarative interface enables platform independence", §1).
//
// Concurrency contract: implementations must be safe for concurrent
// calls from multiple operator goroutines — the executor overlaps
// independent phases (extract-left ∥ extract-right, OR-filter branches,
// adaptive shards) by posting groups in parallel. A conforming
// implementation must produce results for a group that depend only on
// the group's content (and, for the simulator, the configured seed),
// never on the interleaving of concurrent Run calls.
type Marketplace interface {
	// Run posts one HIT group and blocks until every assignment
	// completes, is refused, or expires (accepted by a worker but never
	// submitted within the assignment deadline).
	Run(group *hit.Group) (*RunResult, error)
	// RunAsync posts one HIT group without blocking. The returned
	// channel is buffered and receives exactly one outcome when the
	// group completes. Implementations that have no native async path
	// can wrap Run with GoRun.
	RunAsync(group *hit.Group) <-chan Async
}

// WorkerModerator is an optional Marketplace extension for backends
// that can moderate individual workers: ban poor performers from
// future tasks (the paper's §6 suggestion to act on the QA algorithm's
// output), lift bans, and pay bonuses. The simulator moderates its
// synthetic population; the live MTurk client maps these calls to
// CreateWorkerBlock / DeleteWorkerBlock / SendBonus.
type WorkerModerator interface {
	// BlockWorker bans workerID from future task pickup; reason is
	// recorded with the marketplace (MTurk shows it to the worker).
	BlockWorker(workerID, reason string) error
	// UnblockWorker lifts a previous block on workerID.
	UnblockWorker(workerID, reason string) error
	// BonusWorker grants workerID a bonus of cents against one of
	// their submitted assignments.
	BonusWorker(workerID, assignmentID string, cents int, reason string) error
}

// Async is the outcome RunAsync delivers.
type Async struct {
	// Result is the completed group's outcome when Err is nil.
	Result *RunResult
	// Err is the posting failure, if any.
	Err error
}

// Await blocks on an async outcome or on context cancellation,
// whichever comes first. The posted HITs are not recalled on
// cancellation — crowd work, once posted, is spent — but the caller
// stops waiting for it.
func Await(ctx context.Context, ch <-chan Async) (*RunResult, error) {
	select {
	case a := <-ch:
		return a.Result, a.Err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// GoRun adapts a blocking run function into the RunAsync shape; useful
// for Marketplace implementations without a native async path.
func GoRun(run func() (*RunResult, error)) <-chan Async {
	ch := make(chan Async, 1)
	go func() {
		r, err := run()
		ch <- Async{Result: r, Err: err}
	}()
	return ch
}

// StreamMarketplace is an optional extension: marketplaces that can
// deliver per-HIT assignment batches as they complete, so callers can
// overlap vote aggregation with in-flight simulation. deliver is called
// serially (never concurrently with itself), possibly out of HIT order,
// once per HIT that produced assignments. The final RunResult is
// identical to what Run would return.
type StreamMarketplace interface {
	Marketplace
	// RunStream posts one group and calls deliver once per HIT that
	// produced assignments, as results become available; it returns the
	// same RunResult Run would.
	RunStream(group *hit.Group, deliver func(hitID string, as []hit.Assignment)) (*RunResult, error)
}

// Stream posts a group and feeds per-HIT results to deliver as they
// complete, using the native streaming path when the marketplace has
// one and falling back to a blocking Run followed by sequential
// delivery otherwise.
func Stream(m Marketplace, group *hit.Group, deliver func(hitID string, as []hit.Assignment)) (*RunResult, error) {
	if sm, ok := m.(StreamMarketplace); ok {
		return sm.RunStream(group, deliver)
	}
	res, err := m.Run(group)
	if err != nil {
		return nil, err
	}
	if deliver != nil {
		// Group by HIT (without assuming the implementation returned
		// assignments sorted) so deliver fires exactly once per HIT.
		byHIT := map[string][]hit.Assignment{}
		var order []string
		for _, a := range res.Assignments {
			if _, seen := byHIT[a.HITID]; !seen {
				order = append(order, a.HITID)
			}
			byHIT[a.HITID] = append(byHIT[a.HITID], a)
		}
		for _, id := range order {
			deliver(id, byHIT[id])
		}
	}
	return res, nil
}

// RunResult is the outcome of posting a HIT group.
type RunResult struct {
	// Assignments holds every completed assignment with submit times.
	Assignments []hit.Assignment
	// Incomplete lists HIT IDs workers refused to complete (batch too
	// large for the price — paper §4.2.2's group-size-20 experiment and
	// §6 "we found batch sizes at which workers refused to perform
	// tasks").
	Incomplete []string
	// Expired maps HIT IDs to how many of their assignments were
	// accepted by a worker but never submitted before the assignment
	// deadline. The HIT's completed assignments (if any) are still in
	// Assignments; callers that want the missing votes re-post the HIT's
	// questions (the streaming executor's expiry retry policy does this
	// with lineage-derived HIT IDs, bounded by Options.ExpiredRetries).
	Expired map[string]int
	// MakespanHours is the time the last assignment completed, or — when
	// any assignment expired — the time the expiry was detected, since a
	// caller cannot know an assignment is never coming until its
	// deadline passes.
	MakespanHours float64
	// TotalAssignments counts completed assignments.
	TotalAssignments int
}

// addExpired records n expired assignments against a HIT.
func (out *RunResult) addExpired(hitID string, n int) {
	if n <= 0 {
		return
	}
	if out.Expired == nil {
		out.Expired = map[string]int{}
	}
	out.Expired[hitID] += n
}

// merge appends r's outcome to out.
func (out *RunResult) merge(r *RunResult) {
	out.Assignments = append(out.Assignments, r.Assignments...)
	out.Incomplete = append(out.Incomplete, r.Incomplete...)
	for id, n := range r.Expired {
		out.addExpired(id, n)
	}
	out.TotalAssignments += r.TotalAssignments
	if r.MakespanHours > out.MakespanHours {
		out.MakespanHours = r.MakespanHours
	}
}

// Config parametrizes the simulated marketplace.
type Config struct {
	// Seed makes the simulation deterministic.
	Seed int64
	// Population configures the worker pool.
	Population PopulationConfig
	// AssignmentsPerHour is the base marketplace throughput for
	// effortless HITs (default 2500; calibrated so a 30×30 unbatched
	// celebrity join lands in the paper's ~1.5–2 hour range).
	AssignmentsPerHour float64
	// TimeOfDayFactor scales throughput (the paper ran morning and
	// evening trials and saw variance; default 1).
	TimeOfDayFactor float64
	// SlowdownEffort is the per-HIT effort (in unit-equivalents) at
	// which pickup starts to slow; beyond it the rate falls
	// quadratically (default 8).
	SlowdownEffort float64
	// RefusalEffort is the effort beyond which workers refuse the HIT
	// entirely at this price (default 30; a group-size-20 comparison
	// exceeds it, reproducing the paper's stalled experiment).
	RefusalEffort float64
	// StragglerFrac is the tail fraction of assignments that complete
	// slowly (default 0.05).
	StragglerFrac float64
	// StragglerSlowdown stretches the tail (default 20; makes the last
	// 5% of tasks consume roughly half the wall clock, as in Fig. 4).
	StragglerSlowdown float64
	// SpamBatchAffinityPerUnit grows spammer pickup weight per extra
	// unit of batched work (default 0.35).
	SpamBatchAffinityPerUnit float64
	// CombinedConfusionFactor scales feature confusion in combined
	// interfaces (default 0.55).
	CombinedConfusionFactor float64
	// RatingNoise is per-rating Gaussian noise in Likert units
	// (default 0.55).
	RatingNoise float64
	// RateExtraSigma is additional perceptual noise (in units of the
	// score range) that applies only to rating questions: judging an
	// item in isolation is harder than comparing items side by side,
	// which is why the paper's Rate reaches τ ≈ 0.78 on squares whose
	// Compare is perfect (§4.2.2). Default 0.28.
	RateExtraSigma float64
	// UnknownShare is the fraction of feature errors reported as
	// UNKNOWN when allowed (default 0.15).
	UnknownShare float64
	// GroupRampAssignments softens throughput for small groups: tiny
	// groups are less attractive to Turkers (default 20).
	GroupRampAssignments float64
	// AbandonProb is the per-assignment probability that a sampled
	// worker accepts the HIT but never submits it, so the assignment
	// expires at AssignmentDurationHours (default 0 — no abandonment,
	// preserving pre-timeout-policy behavior bit for bit). Abandonment
	// is drawn from the HIT's private RNG stream, so which assignments
	// expire depends only on (seed, groupID, hitID) — never on chunking
	// or scheduling.
	AbandonProb float64
	// AssignmentDurationHours is the deadline an accepted assignment
	// must be submitted by; abandoned assignments are detected as
	// expired at this time after the group is posted (default 2).
	// Expiry therefore dominates a group's makespan, mirroring the real
	// marketplace, where an abandoned assignment blocks completion until
	// its AssignmentDurationInSeconds elapses.
	AssignmentDurationHours float64
	// Parallelism bounds the simulation worker pool per Run (default
	// GOMAXPROCS). Results are bit-identical at any setting; 1 forces
	// fully sequential simulation.
	Parallelism int
	// TrackPosts keeps a log of every HIT admitted to the market (see
	// PostedHITs) and deduplicates re-posts of an already-admitted HIT,
	// modeling the real marketplace's idempotent re-attach: a resumed
	// run that re-posts a group whose HITs are already live creates
	// nothing new. Off by default (zero overhead); crash-recovery tests
	// turn it on to assert zero duplicate posting.
	TrackPosts bool
}

// DefaultConfig returns the calibrated defaults described above.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                     seed,
		AssignmentsPerHour:       2500,
		TimeOfDayFactor:          1,
		SlowdownEffort:           8,
		RefusalEffort:            30,
		StragglerFrac:            0.05,
		StragglerSlowdown:        20,
		SpamBatchAffinityPerUnit: 0.35,
		CombinedConfusionFactor:  0.55,
		RatingNoise:              0.55,
		RateExtraSigma:           0.28,
		UnknownShare:             0.15,
		GroupRampAssignments:     20,
		AssignmentDurationHours:  2,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig(c.Seed)
	if c.AssignmentsPerHour == 0 {
		c.AssignmentsPerHour = d.AssignmentsPerHour
	}
	if c.TimeOfDayFactor == 0 {
		c.TimeOfDayFactor = d.TimeOfDayFactor
	}
	if c.SlowdownEffort == 0 {
		c.SlowdownEffort = d.SlowdownEffort
	}
	if c.RefusalEffort == 0 {
		c.RefusalEffort = d.RefusalEffort
	}
	if c.StragglerFrac == 0 {
		c.StragglerFrac = d.StragglerFrac
	}
	if c.StragglerSlowdown == 0 {
		c.StragglerSlowdown = d.StragglerSlowdown
	}
	if c.SpamBatchAffinityPerUnit == 0 {
		c.SpamBatchAffinityPerUnit = d.SpamBatchAffinityPerUnit
	}
	if c.CombinedConfusionFactor == 0 {
		c.CombinedConfusionFactor = d.CombinedConfusionFactor
	}
	if c.RatingNoise == 0 {
		c.RatingNoise = d.RatingNoise
	}
	if c.RateExtraSigma == 0 {
		c.RateExtraSigma = d.RateExtraSigma
	}
	if c.UnknownShare == 0 {
		c.UnknownShare = d.UnknownShare
	}
	if c.GroupRampAssignments == 0 {
		c.GroupRampAssignments = d.GroupRampAssignments
	}
	if c.AssignmentDurationHours == 0 {
		c.AssignmentDurationHours = d.AssignmentDurationHours
	}
}

// SimMarket is the simulated marketplace. Run, RunAsync, RunStream, and
// RunAll are all safe for concurrent use: every HIT draws its answers
// and latencies from a private RNG seeded by hash(Seed, groupID, hitID),
// so results are bit-identical for a fixed seed regardless of core
// count, scheduling order, or how many groups are in flight at once.
type SimMarket struct {
	cfg    Config
	oracle Oracle
	pop    *Population
	// sem bounds concurrent HIT simulations across ALL in-flight Run
	// calls on this market, so overlapped operator phases cannot
	// oversubscribe the CPU to phases × GOMAXPROCS goroutines.
	sem chan struct{}

	// Post admission state (Config.TrackPosts / InjectCrashAfter),
	// guarded by its own mutex so the hot simulation path never
	// contends on it.
	postMu     sync.Mutex
	posted     map[string]bool
	postLog    []string
	crashArmed bool
	crashLeft  int
	crashed    bool

	// Worker-moderation state (WorkerModerator), guarded separately
	// from the simulation hot path.
	modMu   sync.Mutex
	bonuses map[string]int // workerID → total bonus cents granted
}

// ErrInjectedCrash is the failure a SimMarket armed with
// InjectCrashAfter returns from the posting path; crash-recovery tests
// treat it as the process dying mid-post.
var ErrInjectedCrash = errors.New("crowd: injected crash")

// NewSimMarket builds a marketplace over the oracle's ground truth.
func NewSimMarket(cfg Config, oracle Oracle) *SimMarket {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	return &SimMarket{
		cfg:    cfg,
		oracle: oracle,
		pop:    NewPopulation(cfg.Population, rng),
		sem:    make(chan struct{}, par),
	}
}

// InjectCrashAfter arms a one-shot fault: the market admits n more new
// HITs and then fails the posting call that tries to admit the next
// one with ErrInjectedCrash — and keeps failing every posting call
// after that, like a dead process. HITs of the failing group admitted
// before the trip stay admitted (a torn post, exactly what a crash
// between HIT creations leaves behind). A negative n disarms the fault
// so a "restarted" run can proceed. Re-posts of already-admitted HITs
// never count against n (they are re-attaches, not new work).
func (m *SimMarket) InjectCrashAfter(n int) {
	m.postMu.Lock()
	defer m.postMu.Unlock()
	if n < 0 {
		m.crashArmed = false
		m.crashed = false
		return
	}
	m.crashArmed = true
	m.crashLeft = n
	m.crashed = false
}

// PostedHITs returns the admission log: one "groupID/hitID" entry per
// distinct HIT ever admitted, in admission order. Requires
// Config.TrackPosts; crash-recovery tests compare this log between an
// interrupted-and-resumed run and an uninterrupted one to prove zero
// duplicate posting.
func (m *SimMarket) PostedHITs() []string {
	m.postMu.Lock()
	defer m.postMu.Unlock()
	out := make([]string, len(m.postLog))
	copy(out, m.postLog)
	return out
}

// admit runs the posting gate: it logs and deduplicates new HITs when
// TrackPosts is on and trips the armed crash fault on the (n+1)th new
// HIT. Returns the error the posting call should fail with, or nil.
func (m *SimMarket) admit(group *hit.Group) error {
	if !m.cfg.TrackPosts && !m.crashArmedSnapshot() {
		return nil
	}
	m.postMu.Lock()
	defer m.postMu.Unlock()
	for _, h := range group.HITs {
		key := group.ID + "/" + h.ID
		if m.posted[key] {
			continue // already live: re-attach, never a new post
		}
		if m.crashed || (m.crashArmed && m.crashLeft == 0) {
			m.crashed = true
			return ErrInjectedCrash
		}
		if m.crashArmed {
			m.crashLeft--
		}
		if m.cfg.TrackPosts {
			if m.posted == nil {
				m.posted = map[string]bool{}
			}
			m.posted[key] = true
			m.postLog = append(m.postLog, key)
		}
	}
	return nil
}

// crashArmedSnapshot reads the fault flag under the lock so admit can
// fast-path out when neither tracking nor fault injection is on.
func (m *SimMarket) crashArmedSnapshot() bool {
	m.postMu.Lock()
	defer m.postMu.Unlock()
	return m.crashArmed || m.crashed
}

// Population exposes the worker pool (experiments regress accuracy
// against per-worker task counts, §3.3.3).
func (m *SimMarket) Population() *Population { return m.pop }

// BlockWorker implements WorkerModerator by banning the worker from
// future task pickup in the simulated population.
func (m *SimMarket) BlockWorker(workerID, reason string) error {
	m.pop.Ban(workerID)
	return nil
}

// UnblockWorker implements WorkerModerator by restoring the worker to
// the simulated pickup pool.
func (m *SimMarket) UnblockWorker(workerID, reason string) error {
	m.pop.Unban(workerID)
	return nil
}

// BonusWorker implements WorkerModerator by recording a bonus grant
// for the worker. The simulator tracks totals (see BonusCents) so
// experiments can audit incentive spend; it does not change worker
// behavior.
func (m *SimMarket) BonusWorker(workerID, assignmentID string, cents int, reason string) error {
	if cents <= 0 {
		return fmt.Errorf("crowd: bonus must be positive, got %d cents", cents)
	}
	m.modMu.Lock()
	defer m.modMu.Unlock()
	if m.bonuses == nil {
		m.bonuses = map[string]int{}
	}
	m.bonuses[workerID] += cents
	return nil
}

// BonusCents reports the total bonus cents granted to a worker via
// BonusWorker.
func (m *SimMarket) BonusCents(workerID string) int {
	m.modMu.Lock()
	defer m.modMu.Unlock()
	return m.bonuses[workerID]
}

// Oracle returns the ground-truth oracle (experiments score results
// against it).
func (m *SimMarket) Oracle() Oracle { return m.oracle }

// effort estimates how much work one HIT demands of a worker, in
// single-judgment equivalents. Comparison groups cost S·log₂(S)/2 —
// ranking needs more than S looks — and grid cells are cheaper than
// standalone pair judgments (clicking matches in context).
func effort(h *hit.HIT) float64 {
	var e float64
	for i := range h.Questions {
		q := &h.Questions[i]
		switch q.Kind {
		case hit.CompareQ:
			s := float64(len(q.Items))
			e += s * math.Log2(s) / 2
		case hit.JoinGridQ:
			e += 0.35 * float64(q.UnitCount())
		case hit.GenerativeQ:
			e += 0.5 + 0.5*float64(len(q.Fields))
		default:
			e += 1
		}
	}
	return e
}

// seedSalt decorrelates the per-HIT streams from the population
// stream; the value is arbitrary (it was fixed once, when the
// simulator's statistical calibration was validated against the
// paper's bands).
const seedSalt = 0

// hitSeed derives the per-HIT RNG seed. Mixing through a splitmix64
// finalizer decorrelates nearby (group, hit) pairs so adjacent HITs do
// not share low-bit structure.
func hitSeed(seed int64, groupID, hitID string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, groupID)
	h.Write([]byte{0xff, seedSalt})
	io.WriteString(h, hitID)
	return mix64(h.Sum64() ^ uint64(seed)*0x9e3779b97f4a7c15)
}

// mix64 is the splitmix64 finalizer, shared by hitSeed and the
// splitmix source so the two stay in lockstep.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// splitmix is a rand.Source64 over the splitmix64 generator. Seeding
// costs one assignment — math/rand's default source burns ~10µs
// initializing a 607-word table, which dominated the per-HIT hot path
// when every HIT gets a private stream.
type splitmix struct{ state uint64 }

// Uint64 implements rand.Source64.
func (s *splitmix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix64(s.state)
}

// Int63 implements rand.Source.
func (s *splitmix) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *splitmix) Seed(seed int64) { s.state = uint64(seed) }

// hitRNG returns the HIT's private RNG stream.
func hitRNG(seed int64, groupID, hitID string) *rand.Rand {
	return rand.New(&splitmix{state: hitSeed(seed, groupID, hitID)})
}

// posting is one accepted HIT with its precomputed simulation inputs.
type posting struct {
	h        *hit.HIT
	slowdown float64
	// idBase is the serial of this HIT's first assignment, fixed ahead
	// of simulation (from the same min(assignments, available) rule
	// SampleDistinct applies) so assignment IDs are stable under
	// parallelism.
	idBase int
}

// Run implements Marketplace.
func (m *SimMarket) Run(group *hit.Group) (*RunResult, error) {
	return m.RunStream(group, nil)
}

// RunAsync implements Marketplace.
func (m *SimMarket) RunAsync(group *hit.Group) <-chan Async {
	return GoRun(func() (*RunResult, error) { return m.Run(group) })
}

// RunStream implements StreamMarketplace: HITs simulate concurrently on
// a pool bounded by Config.Parallelism (default GOMAXPROCS) and deliver
// fires serially as each HIT completes.
func (m *SimMarket) RunStream(group *hit.Group, deliver func(hitID string, as []hit.Assignment)) (*RunResult, error) {
	if group == nil || len(group.HITs) == 0 {
		return &RunResult{}, nil
	}
	if err := m.admit(group); err != nil {
		return nil, err
	}
	res := &RunResult{}

	// Pass 1 (sequential, cheap): refusal check, slowdowns, and the
	// assignment-serial layout that keeps IDs stable under parallelism.
	// Serials advance by the availability-capped per-HIT count (the
	// exact number SampleDistinct will return); throughput uses the
	// requested count, matching the original calibration.
	avail := m.pop.AvailableCount()
	var postings []posting
	completable := 0
	requested := 0
	for _, h := range group.HITs {
		if err := h.Validate(); err != nil {
			return nil, fmt.Errorf("crowd: %w", err)
		}
		e := effort(h)
		if e > m.cfg.RefusalEffort {
			res.Incomplete = append(res.Incomplete, h.ID)
			continue
		}
		slow := 1.0
		if e > m.cfg.SlowdownEffort {
			r := m.cfg.SlowdownEffort / e
			slow = r * r
		}
		workers := h.Assignments
		if workers > avail {
			workers = avail
		}
		postings = append(postings, posting{h: h, slowdown: slow, idBase: completable})
		completable += workers
		requested += h.Assignments
	}
	if requested == 0 || completable == 0 {
		return res, nil
	}

	// Group throughput: base rate scaled by time of day and by group
	// attractiveness (small groups draw fewer Turkers, §2.6).
	a := float64(requested)
	ramp := a / (a + m.cfg.GroupRampAssignments)
	rate := m.cfg.AssignmentsPerHour * m.cfg.TimeOfDayFactor * ramp
	baseMakespan := a / rate

	rcfg := respondConfig{
		ratingNoise:             m.cfg.RatingNoise,
		rateExtraSigma:          m.cfg.RateExtraSigma,
		combinedConfusionFactor: m.cfg.CombinedConfusionFactor,
		unknownShare:            m.cfg.UnknownShare,
	}

	// Pass 2 (parallel): each HIT simulates on its own RNG stream.
	// The market-wide semaphore bounds total concurrent simulations
	// even when several Run calls are in flight at once.
	workers := cap(m.sem)
	if workers > len(postings) {
		workers = len(postings)
	}
	perHIT := make([][]hit.Assignment, len(postings))
	perExpired := make([]int, len(postings))
	if workers <= 1 {
		for i := range postings {
			m.sem <- struct{}{}
			perHIT[i], perExpired[i] = m.simulateHIT(group.ID, &postings[i], baseMakespan, rcfg)
			<-m.sem
			if deliver != nil && len(perHIT[i]) > 0 {
				deliver(postings[i].h.ID, perHIT[i])
			}
		}
	} else {
		var next atomic.Int64
		var deliverMu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(postings) {
						return
					}
					m.sem <- struct{}{}
					as, exp := m.simulateHIT(group.ID, &postings[i], baseMakespan, rcfg)
					<-m.sem
					perHIT[i] = as
					perExpired[i] = exp
					if deliver != nil && len(as) > 0 {
						deliverMu.Lock()
						deliver(postings[i].h.ID, as)
						deliverMu.Unlock()
					}
				}
			}()
		}
		wg.Wait()
	}

	// Assemble in posting order; max and concatenation are both
	// independent of completion order.
	for i, as := range perHIT {
		for j := range as {
			if as[j].SubmitHours > res.MakespanHours {
				res.MakespanHours = as[j].SubmitHours
			}
		}
		res.Assignments = append(res.Assignments, as...)
		res.addExpired(postings[i].h.ID, perExpired[i])
	}
	if len(res.Expired) > 0 && res.MakespanHours < m.cfg.AssignmentDurationHours {
		// Abandoned assignments are only known to be gone once the
		// assignment deadline passes.
		res.MakespanHours = m.cfg.AssignmentDurationHours
	}
	res.TotalAssignments = len(res.Assignments)
	hit.SortAssignments(res.Assignments)
	return res, nil
}

// simulateHIT generates one HIT's assignments: worker pickup, answers,
// and completion times, all drawn from the HIT's private RNG stream. It
// also reports how many sampled workers abandoned the HIT (accepted it
// but never submitted — Config.AbandonProb), whose assignments expire
// instead of completing.
func (m *SimMarket) simulateHIT(groupID string, p *posting, baseMakespan float64, rcfg respondConfig) ([]hit.Assignment, int) {
	rng := hitRNG(m.cfg.Seed, groupID, p.h.ID)
	units := p.h.Units()
	affinity := 1 + m.cfg.SpamBatchAffinityPerUnit*float64(units-1)
	if affinity < 1 {
		affinity = 1
	}
	workers := m.pop.SampleDistinct(p.h.Assignments, affinity, rng)
	out := make([]hit.Assignment, 0, len(workers))
	expired := 0
	for k, w := range workers {
		// The abandonment draw happens only when the knob is on, so an
		// AbandonProb of zero leaves the legacy RNG stream — and every
		// calibrated simulation result — untouched.
		if m.cfg.AbandonProb > 0 && rng.Float64() < m.cfg.AbandonProb {
			expired++
			continue
		}
		asn := hit.Assignment{
			ID:       hit.MintID(groupID, "a", p.idBase+k+1, 6),
			HITID:    p.h.ID,
			WorkerID: w.ID,
			Answers:  make([]hit.Answer, 0, len(p.h.Questions)),
		}
		for qi := range p.h.Questions {
			q := &p.h.Questions[qi]
			asn.Answers = append(asn.Answers, respond(w, q, m.oracle, rcfg, units, rng))
		}
		// One add per assignment (as documented on the field), not per
		// question — popular Zipfian workers are sampled by many HITs
		// at once, and per-question RMWs ping-pong their cache line
		// across the pool.
		atomic.AddInt64(&w.TasksDone, 1)
		// Completion time: position u on the group's completion curve,
		// stretched through the straggler tail, divided by this HIT's
		// slowdown.
		u := rng.Float64()
		pos := u
		if u > 1-m.cfg.StragglerFrac {
			pos = (1 - m.cfg.StragglerFrac) + (u-(1-m.cfg.StragglerFrac))*m.cfg.StragglerSlowdown
		}
		t := baseMakespan * pos / p.slowdown
		// Small per-assignment jitter.
		t *= 1 + 0.1*rng.Float64()
		asn.SubmitHours = t
		out = append(out, asn)
	}
	return out, expired
}

// RunAll posts several groups concurrently and concatenates results in
// argument order; a convenience for operators that stage multiple
// phases. Because each HIT's randomness derives only from (seed, group
// ID, HIT ID), the concurrent execution is bit-identical to the old
// sequential loop posting one group at a time.
func (m *SimMarket) RunAll(groups ...*hit.Group) (*RunResult, error) {
	if len(groups) == 1 {
		return m.Run(groups[0])
	}
	chans := make([]<-chan Async, len(groups))
	for i, g := range groups {
		chans[i] = m.RunAsync(g)
	}
	out := &RunResult{}
	var firstErr error
	for _, ch := range chans {
		a := <-ch
		if a.Err != nil {
			if firstErr == nil {
				firstErr = a.Err
			}
			continue
		}
		out.merge(a.Result)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
