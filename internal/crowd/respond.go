package crowd

import (
	"math"
	"math/rand"
	"strings"

	"qurk/internal/hit"
)

// respondConfig carries the response-model knobs out of Config.
type respondConfig struct {
	// ratingNoise is per-rating Gaussian noise in Likert units.
	ratingNoise float64
	// combinedConfusionFactor scales feature confusion down when
	// several features are asked in one combined interface — the
	// paper's "demographic survey" effect (§3.3.4: combining "reduces
	// cost and error rate").
	combinedConfusionFactor float64
	// unknownShare is the fraction of feature errors that surface as
	// UNKNOWN (when the task allows it) rather than a wrong value.
	unknownShare float64
	// rateExtraSigma is rating-only perceptual noise in range units
	// (items judged in isolation, not side-by-side).
	rateExtraSigma float64
}

// respond produces one worker's Answer to q. units is the total work in
// the containing HIT (drives batching sloppiness).
func respond(w *Worker, q *hit.Question, o Oracle, cfg respondConfig, units int, rng *rand.Rand) hit.Answer {
	switch q.Kind {
	case hit.FilterQ:
		return answerFilter(w, q, o, units, rng)
	case hit.GenerativeQ:
		return answerGenerative(w, q, o, cfg, units, rng)
	case hit.JoinPairQ:
		return answerJoinPair(w, q, o, units, rng)
	case hit.JoinGridQ:
		return answerJoinGrid(w, q, o, units, rng)
	case hit.CompareQ:
		return answerCompare(w, q, o, rng)
	case hit.RateQ:
		return answerRate(w, q, o, cfg, rng)
	default:
		return hit.Answer{QuestionID: q.ID}
	}
}

func answerFilter(w *Worker, q *hit.Question, o Oracle, units int, rng *rand.Rand) hit.Answer {
	if w.IsSpammer {
		return hit.Answer{QuestionID: q.ID, Bool: spamBool(w, rng)}
	}
	truth, diff := o.FilterTruth(q.Task, q.Tuple)
	correct := rng.Float64() < w.effectiveAccuracy(diff, units)
	return hit.Answer{QuestionID: q.ID, Bool: truth == correct}
}

// falsePositiveDamp scales the error rate when the true join answer is
// "no": misses (false negatives) are the dominant human error on match
// tasks, while spurious confirmations are rare — the paper's batched
// joins lose true positives but keep the true-negative rate ≈ 1.0
// (Fig. 3, Table 1).
const falsePositiveDamp = 0.25

func answerJoinPair(w *Worker, q *hit.Question, o Oracle, units int, rng *rand.Rand) hit.Answer {
	if w.IsSpammer {
		return hit.Answer{QuestionID: q.ID, Bool: spamBool(w, rng)}
	}
	match, diff := o.JoinMatch(q.Left, q.Right)
	errProb := 1 - w.effectiveAccuracy(diff, units)
	if !match {
		errProb *= falsePositiveDamp
	}
	correct := rng.Float64() >= errProb
	return hit.Answer{QuestionID: q.ID, Bool: match == correct}
}

func spamBool(w *Worker, rng *rand.Rand) bool {
	if w.Strategy == SpamMinimal {
		return false // least-effort click-through
	}
	return rng.Float64() < 0.5
}

func answerJoinGrid(w *Worker, q *hit.Question, o Oracle, units int, rng *rand.Rand) hit.Answer {
	ans := hit.Answer{QuestionID: q.ID}
	if w.IsSpammer {
		if w.Strategy == SpamMinimal {
			return ans // "no matches" checkbox
		}
		// Random spammer clicks a few arbitrary cells.
		for l := range q.LeftItems {
			for r := range q.RightItems {
				if rng.Float64() < 0.1 {
					ans.Pairs = append(ans.Pairs, [2]int{l, r})
				}
			}
		}
		return ans
	}
	for l, lt := range q.LeftItems {
		for r, rt := range q.RightItems {
			match, diff := o.JoinMatch(lt, rt)
			errProb := 1 - w.effectiveAccuracy(diff, units)
			if !match {
				errProb *= falsePositiveDamp
			}
			correct := rng.Float64() >= errProb
			if match == correct {
				ans.Pairs = append(ans.Pairs, [2]int{l, r})
			}
		}
	}
	return ans
}

// answerCompare implements a Thurstonian judgment: the worker perceives
// each item's latent score plus subjective noise and reports the induced
// order. Within one worker's group the order is internally consistent;
// across workers and groups, noise yields the non-transitive pairwise
// majorities the paper observed (§4.1.1).
func answerCompare(w *Worker, q *hit.Question, o Oracle, rng *rand.Rand) hit.Answer {
	n := len(q.Items)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if w.IsSpammer {
		if w.Strategy == SpamRandom {
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		return hit.Answer{QuestionID: q.ID, Order: order}
	}
	lo, hi := o.ScoreRange(q.Task)
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	perceived := make([]float64, n)
	for i, item := range q.Items {
		score, sigma := o.Score(q.Task, item)
		perceived[i] = score + rng.NormFloat64()*sigma*span*w.NoiseMult
	}
	sortByScore(order, perceived)
	return hit.Answer{QuestionID: q.ID, Order: order}
}

func sortByScore(order []int, score []float64) {
	// Insertion sort: n ≤ ~20 items per comparison group.
	for i := 1; i < len(order); i++ {
		j := i
		for j > 0 && score[order[j-1]] > score[order[j]] {
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
}

// answerRate maps the item's latent score onto the Likert scale through
// the worker's personal calibration (slope, bias) plus subjective and
// response noise (paper §4.1.2).
func answerRate(w *Worker, q *hit.Question, o Oracle, cfg respondConfig, rng *rand.Rand) hit.Answer {
	if w.IsSpammer {
		r := (q.Scale + 1) / 2
		if w.Strategy == SpamRandom {
			r = 1 + rng.Intn(q.Scale)
		}
		return hit.Answer{QuestionID: q.ID, Rating: r}
	}
	lo, hi := o.ScoreRange(q.Task)
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	score, sigma := o.Score(q.Task, q.Tuple)
	norm := (score-lo)/span + rng.NormFloat64()*sigma*w.NoiseMult + rng.NormFloat64()*cfg.rateExtraSigma

	raw := 1 + norm*w.RatingSlope*float64(q.Scale-1) + w.RatingBias + rng.NormFloat64()*cfg.ratingNoise
	r := int(math.Round(raw))
	if r < 1 {
		r = 1
	}
	if r > q.Scale {
		r = q.Scale
	}
	return hit.Answer{QuestionID: q.ID, Rating: r}
}

func answerGenerative(w *Worker, q *hit.Question, o Oracle, cfg respondConfig, units int, rng *rand.Rand) hit.Answer {
	ans := hit.Answer{QuestionID: q.ID, Fields: make(map[string]string, len(q.Fields))}
	combined := strings.Contains(q.Task, "+")
	for _, field := range q.Fields {
		value, confusion, options := o.FieldValue(q.Task, field, q.Tuple)
		if w.IsSpammer {
			switch {
			case len(options) == 0:
				ans.Fields[field] = "asdf"
			case w.Strategy == SpamMinimal:
				ans.Fields[field] = options[0]
			default:
				ans.Fields[field] = options[rng.Intn(len(options))]
			}
			continue
		}
		if combined {
			confusion *= cfg.combinedConfusionFactor
		}
		// Worker-specific error rate: less skilled workers confuse
		// features more; batching adds sloppiness.
		errProb := confusion * (1.5 - w.Skill)
		if units > 1 {
			errProb += w.Sloppiness * float64(units-1)
		}
		if errProb > 0.95 {
			errProb = 0.95
		}
		if rng.Float64() >= errProb {
			ans.Fields[field] = value
			continue
		}
		// Error: either UNKNOWN (if offered) or a different option.
		if hasUnknown(options) && rng.Float64() < cfg.unknownShare {
			ans.Fields[field] = "UNKNOWN"
			continue
		}
		if len(options) == 0 {
			// Free text: garbled response the normalizer can't save.
			ans.Fields[field] = value + " ???"
			continue
		}
		alts := make([]string, 0, len(options))
		for _, opt := range options {
			if opt != value && !strings.EqualFold(opt, "UNKNOWN") {
				alts = append(alts, opt)
			}
		}
		if len(alts) == 0 {
			ans.Fields[field] = value
			continue
		}
		ans.Fields[field] = alts[rng.Intn(len(alts))]
	}
	return ans
}

func hasUnknown(options []string) bool {
	for _, o := range options {
		if strings.EqualFold(o, "UNKNOWN") {
			return true
		}
	}
	return false
}
