package crowd

import (
	"fmt"
	"testing"

	"qurk/internal/hit"
)

// assignmentsEqual compares two run results field by field.
func assignmentsEqual(t *testing.T, a, b *RunResult) {
	t.Helper()
	if a.TotalAssignments != b.TotalAssignments {
		t.Fatalf("TotalAssignments %d != %d", a.TotalAssignments, b.TotalAssignments)
	}
	if a.MakespanHours != b.MakespanHours {
		t.Fatalf("MakespanHours %v != %v", a.MakespanHours, b.MakespanHours)
	}
	if len(a.Incomplete) != len(b.Incomplete) {
		t.Fatalf("Incomplete %v != %v", a.Incomplete, b.Incomplete)
	}
	for i := range a.Incomplete {
		if a.Incomplete[i] != b.Incomplete[i] {
			t.Fatalf("Incomplete[%d] %q != %q", i, a.Incomplete[i], b.Incomplete[i])
		}
	}
	for i := range a.Assignments {
		x, y := a.Assignments[i], b.Assignments[i]
		if x.ID != y.ID || x.HITID != y.HITID || x.WorkerID != y.WorkerID || x.SubmitHours != y.SubmitHours {
			t.Fatalf("assignment %d differs: %+v vs %+v", i, x, y)
		}
		if len(x.Answers) != len(y.Answers) {
			t.Fatalf("assignment %d answer counts differ", i)
		}
		for j := range x.Answers {
			ax, ay := x.Answers[j], y.Answers[j]
			if ax.Bool != ay.Bool || ax.Rating != ay.Rating ||
				fmt.Sprint(ax.Order) != fmt.Sprint(ay.Order) ||
				fmt.Sprint(ax.Pairs) != fmt.Sprint(ay.Pairs) ||
				fmt.Sprint(ax.Fields) != fmt.Sprint(ay.Fields) {
				t.Fatalf("assignment %d answer %d differs: %+v vs %+v", i, j, ax, ay)
			}
		}
	}
}

// TestRunParallelismInvariance is the tentpole's core guarantee: the
// same group simulated sequentially and on a wide worker pool produces
// bit-identical results, because every HIT draws from a private RNG
// seeded only by (seed, group ID, HIT ID).
func TestRunParallelismInvariance(t *testing.T) {
	oracle := &pairOracle{difficulty: 0.1, n: 1000}
	g := buildPairHITs(200, 5)
	runWith := func(par int) *RunResult {
		cfg := DefaultConfig(23)
		cfg.Parallelism = par
		m := NewSimMarket(cfg, oracle)
		res, err := m.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := runWith(1)
	for _, par := range []int{2, 8, 32} {
		assignmentsEqual(t, seq, runWith(par))
	}
}

// TestRunStreamMatchesRun verifies the streaming path delivers exactly
// the blocking result, once per HIT, serially.
func TestRunStreamMatchesRun(t *testing.T) {
	oracle := &pairOracle{difficulty: 0.1, n: 1000}
	g := buildPairHITs(60, 5)
	m := NewSimMarket(DefaultConfig(29), oracle)
	blocking, err := m.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	delivered := map[string]int{}
	inDeliver := false
	streamed, err := m.RunStream(g, func(hitID string, as []hit.Assignment) {
		if inDeliver {
			t.Error("deliver reentered concurrently")
		}
		inDeliver = true
		delivered[hitID] += len(as)
		inDeliver = false
	})
	if err != nil {
		t.Fatal(err)
	}
	assignmentsEqual(t, blocking, streamed)
	perHIT := map[string]int{}
	for _, a := range blocking.Assignments {
		perHIT[a.HITID]++
	}
	if len(delivered) != len(perHIT) {
		t.Fatalf("delivered %d HITs, want %d", len(delivered), len(perHIT))
	}
	for id, n := range perHIT {
		if delivered[id] != n {
			t.Errorf("HIT %s delivered %d assignments, want %d", id, delivered[id], n)
		}
	}
}

// TestRunAsyncMatchesRun verifies the async path returns the blocking
// result.
func TestRunAsyncMatchesRun(t *testing.T) {
	oracle := &pairOracle{difficulty: 0.1, n: 1000}
	g := buildPairHITs(40, 5)
	m := NewSimMarket(DefaultConfig(31), oracle)
	blocking, err := m.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	a := <-m.RunAsync(g)
	if a.Err != nil {
		t.Fatal(a.Err)
	}
	assignmentsEqual(t, blocking, a.Result)
}

// TestRunAllMatchesSequential verifies the parallel RunAll equals
// merging one Run per group in argument order.
func TestRunAllMatchesSequential(t *testing.T) {
	oracle := &pairOracle{difficulty: 0.1, n: 1000}
	groups := make([]*hit.Group, 4)
	for i := range groups {
		groups[i] = buildPairHITs(25, 5)
		groups[i].ID = fmt.Sprintf("g%d", i)
		for _, h := range groups[i].HITs {
			h.GroupID = groups[i].ID
		}
	}
	m := NewSimMarket(DefaultConfig(37), oracle)
	want := &RunResult{}
	for _, g := range groups {
		r, err := m.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		want.merge(r)
	}
	got, err := m.RunAll(groups...)
	if err != nil {
		t.Fatal(err)
	}
	assignmentsEqual(t, want, got)
}

// TestConcurrentRunsAreIndependent hammers one market from many
// goroutines and checks each group's result matches its solo run —
// the concurrency contract on the Marketplace interface.
func TestConcurrentRunsAreIndependent(t *testing.T) {
	oracle := &pairOracle{difficulty: 0.1, n: 1000}
	groups := make([]*hit.Group, 8)
	for i := range groups {
		groups[i] = buildPairHITs(30, 5)
		groups[i].ID = fmt.Sprintf("cg%d", i)
		for _, h := range groups[i].HITs {
			h.GroupID = groups[i].ID
		}
	}
	solo := make([]*RunResult, len(groups))
	for i, g := range groups {
		m := NewSimMarket(DefaultConfig(43), oracle)
		r, err := m.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = r
	}
	m := NewSimMarket(DefaultConfig(43), oracle)
	chans := make([]<-chan Async, len(groups))
	for i, g := range groups {
		chans[i] = m.RunAsync(g)
	}
	for i, ch := range chans {
		a := <-ch
		if a.Err != nil {
			t.Fatal(a.Err)
		}
		assignmentsEqual(t, solo[i], a.Result)
	}
}
