package wal

// Market wrapper tests: the journal boundary around a marketplace —
// intent-before-post ordering, result replay without touching the
// inner backend, per-HIT re-delivery on streamed replays, and
// checkpoint forwarding.

import (
	"errors"
	"fmt"
	"testing"

	"qurk/internal/crowd"
	"qurk/internal/hit"
)

// fakeInner is a deterministic inner marketplace that counts posts, so
// tests can assert a replay issued zero marketplace calls.
type fakeInner struct {
	posts int
	err   error
}

func (f *fakeInner) Run(g *hit.Group) (*crowd.RunResult, error) {
	f.posts++
	if f.err != nil {
		return nil, f.err
	}
	out := &crowd.RunResult{}
	for _, h := range g.HITs {
		for w := 0; w < h.Assignments; w++ {
			out.Assignments = append(out.Assignments, hit.Assignment{
				ID:       fmt.Sprintf("%s/a%d", h.ID, w),
				HITID:    h.ID,
				WorkerID: fmt.Sprintf("w%d", w),
				Answers:  []hit.Answer{{QuestionID: h.Questions[0].ID, Bool: true}},
			})
			out.TotalAssignments++
		}
	}
	return out, nil
}

func (f *fakeInner) RunAsync(g *hit.Group) <-chan crowd.Async {
	return crowd.GoRun(func() (*crowd.RunResult, error) { return f.Run(g) })
}

func sampleGroup(id string) *hit.Group {
	return &hit.Group{
		ID: id,
		HITs: []*hit.HIT{
			{
				ID:          id + "/h0",
				GroupID:     id,
				Kind:        hit.FilterQ,
				Questions:   []hit.Question{{ID: "0", Kind: hit.FilterQ, Task: "isFemale"}},
				Assignments: 2,
				RewardCents: 1,
			},
			{
				ID:          id + "/h1",
				GroupID:     id,
				Kind:        hit.FilterQ,
				Questions:   []hit.Question{{ID: "1", Kind: hit.FilterQ, Task: "isFemale"}},
				Assignments: 2,
				RewardCents: 1,
			},
		},
	}
}

func TestGroupKeyIsContentSensitive(t *testing.T) {
	g := sampleGroup("filter@q.g0")
	if GroupKey(g) != GroupKey(sampleGroup("filter@q.g0")) {
		t.Error("identical groups must share a key")
	}
	other := sampleGroup("filter@q.g0")
	other.HITs[1].Assignments = 5
	if GroupKey(g) == GroupKey(other) {
		t.Error("changing assignment count must change the key")
	}
	renamed := sampleGroup("filter@q.g1")
	if GroupKey(g) == GroupKey(renamed) {
		t.Error("different group IDs must not collide")
	}
}

func TestMarketRunJournalsAndReplays(t *testing.T) {
	path := tempJournal(t)
	j := mustCreate(t, path)
	inner := &fakeInner{}
	m := NewMarket(inner, j)
	if m.Unwrap() != inner {
		t.Fatal("Unwrap must return the inner marketplace")
	}
	g := sampleGroup("filter@q.g0")
	res, err := m.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if inner.posts != 1 || res.TotalAssignments != 4 {
		t.Fatalf("live run: posts=%d assignments=%d", inner.posts, res.TotalAssignments)
	}
	j.Close()

	// Reopen: the result replays from disk with zero marketplace calls.
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	m2 := NewMarket(inner, r)
	res2, err := m2.Run(sampleGroup("filter@q.g0"))
	if err != nil {
		t.Fatal(err)
	}
	if inner.posts != 1 {
		t.Errorf("replay touched the inner marketplace (%d posts)", inner.posts)
	}
	if res2.TotalAssignments != res.TotalAssignments || len(res2.Assignments) != len(res.Assignments) {
		t.Error("replayed result differs from the recorded one")
	}
	// The replayed group's intent+result pair is consumed; a second run
	// of the same group posts live again.
	if _, err := m2.Run(sampleGroup("filter@q.g0")); err != nil {
		t.Fatal(err)
	}
	if inner.posts != 2 {
		t.Error("second run of a consumed key must post live")
	}
}

func TestMarketIntentCommitsBeforePost(t *testing.T) {
	path := tempJournal(t)
	j := mustCreate(t, path)
	inner := &fakeInner{err: errors.New("marketplace down")}
	m := NewMarket(inner, j)
	if _, err := m.Run(sampleGroup("filter@q.g0")); err == nil {
		t.Fatal("inner failure must surface")
	}
	j.Close()

	// The intent survived the failed post: that is the crash window the
	// resume path re-posts.
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.PendingIntents(); got != 1 {
		t.Errorf("PendingIntents = %d, want 1 (intent without result)", got)
	}
	if got := r.ReplayableResults(); got != 0 {
		t.Errorf("ReplayableResults = %d, want 0", got)
	}
}

func TestMarketRunAsyncJournals(t *testing.T) {
	path := tempJournal(t)
	j := mustCreate(t, path)
	defer j.Close()
	inner := &fakeInner{}
	m := NewMarket(inner, j)
	a := <-m.RunAsync(sampleGroup("filter@q.g0"))
	if a.Err != nil {
		t.Fatal(a.Err)
	}
	if j.ReplayableResults() != 0 {
		// Results loaded from disk count as replayable; live appends do
		// not re-enter the replay queue.
		t.Error("live async run polluted the replay queue")
	}
	// Same journal instance: the async result was appended, so a fresh
	// Open sees it.
	j.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.ReplayableResults() != 1 || r.PendingIntents() != 0 {
		t.Errorf("async run recorded %d results / %d pending, want 1 / 0",
			r.ReplayableResults(), r.PendingIntents())
	}
	a2 := <-NewMarket(inner, r).RunAsync(sampleGroup("filter@q.g0"))
	if a2.Err != nil || a2.Result.TotalAssignments != 4 {
		t.Errorf("async replay: %+v", a2)
	}
	if inner.posts != 1 {
		t.Errorf("async replay touched the inner marketplace (%d posts)", inner.posts)
	}
}

func TestMarketRunStreamReplaysPerHIT(t *testing.T) {
	path := tempJournal(t)
	j := mustCreate(t, path)
	inner := &fakeInner{}
	m := NewMarket(inner, j)
	liveOrder := []string{}
	if _, err := m.RunStream(sampleGroup("filter@q.g0"), func(hitID string, as []hit.Assignment) {
		liveOrder = append(liveOrder, fmt.Sprintf("%s:%d", hitID, len(as)))
	}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	replayOrder := []string{}
	res, err := NewMarket(inner, r).RunStream(sampleGroup("filter@q.g0"), func(hitID string, as []hit.Assignment) {
		replayOrder = append(replayOrder, fmt.Sprintf("%s:%d", hitID, len(as)))
	})
	if err != nil {
		t.Fatal(err)
	}
	if inner.posts != 1 {
		t.Errorf("stream replay touched the inner marketplace (%d posts)", inner.posts)
	}
	if res.TotalAssignments != 4 {
		t.Errorf("stream replay folded %d assignments, want 4", res.TotalAssignments)
	}
	if fmt.Sprint(replayOrder) != fmt.Sprint(liveOrder) {
		t.Errorf("replay delivery %v differs from live delivery %v", replayOrder, liveOrder)
	}
}

func TestMarketCheckpointForwards(t *testing.T) {
	path := tempJournal(t)
	j := mustCreate(t, path)
	m := NewMarket(&fakeInner{}, j)
	if err := m.Checkpoint("adaptive-round", "g/s0/r1", 0xbeef, 0); err != nil {
		t.Fatal(err)
	}
	j.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Checkpoint("adaptive-round", "g/s0/r1", 0xbeef, 0); err != nil {
		t.Errorf("forwarded checkpoint did not verify: %v", err)
	}
}
