package wal

// Journal-level tests: record roundtrips, torn-write recovery (the
// crash cases Open must absorb — partial header, short payload, bad
// CRC), checkpoint verify-or-append semantics, and seal/unseal rules.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qurk/internal/crowd"
	"qurk/internal/hit"
)

func tempJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "run.qjl")
}

func sampleResult(hitID string) *crowd.RunResult {
	return &crowd.RunResult{
		Assignments: []hit.Assignment{{
			ID:          hitID + "/a0",
			HITID:       hitID,
			WorkerID:    "w1",
			Answers:     []hit.Answer{{QuestionID: "q0", Bool: true}},
			SubmitHours: 0.25,
		}},
		MakespanHours:    0.25,
		TotalAssignments: 1,
	}
}

// mustCreate opens a fresh journal with a canonical meta record.
func mustCreate(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := Create(path, Meta{Query: "SELECT 1", Backend: "sim", Fingerprint: 0xabcd})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestRoundtripAcrossReopen(t *testing.T) {
	path := tempJournal(t)
	j := mustCreate(t, path)
	if err := j.LogIntent(7, "filter@q.g0", []string{"h0", "h1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.LogResult(7, sampleResult("h0")); err != nil {
		t.Fatal(err)
	}
	if err := j.LogIntent(9, "filter@q.g1", []string{"h2"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Checkpoint("sort-group", "q.g0", 0x1234, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if m := r.Meta(); m.Version != 1 || m.Query != "SELECT 1" || m.Fingerprint != 0xabcd {
		t.Errorf("meta did not roundtrip: %+v", m)
	}
	if sealed, _ := r.Sealed(); sealed {
		t.Error("unsealed journal read back as sealed")
	}
	if got := r.PendingIntents(); got != 1 {
		t.Errorf("PendingIntents = %d, want 1 (group 9's result never committed)", got)
	}
	if got := r.ReplayableResults(); got != 1 {
		t.Errorf("ReplayableResults = %d, want 1", got)
	}
	res := r.Replay(7)
	if res == nil || res.TotalAssignments != 1 || res.Assignments[0].HITID != "h0" {
		t.Fatalf("Replay(7) = %+v, want the recorded result", res)
	}
	if r.Replay(7) != nil {
		t.Error("second Replay(7) must be nil — results pop FIFO")
	}
	if r.Replay(9) != nil {
		t.Error("Replay(9) must be nil — intent committed without a result")
	}
	// Recorded checkpoint verifies on matching digest, diverges otherwise.
	if err := r.Checkpoint("sort-group", "q.g0", 0x1234, 1.5); err != nil {
		t.Errorf("matching checkpoint must verify: %v", err)
	}
	// Queue drained — the same call now appends rather than verifying.
	if err := r.Checkpoint("sort-group", "q.g0", 0x9999, 2.0); err != nil {
		t.Errorf("post-drain checkpoint must append: %v", err)
	}
}

func TestChargeRecordsRoundtrip(t *testing.T) {
	path := tempJournal(t)
	j := mustCreate(t, path)
	if err := j.LogCharge(7, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := j.LogCharge(7, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := j.LogCharge(9, 4, 5); err != nil {
		t.Fatal(err)
	}
	// Live appends are not consumable in the same run: TakeCharge only
	// serves records recovered at Open.
	if j.TakeCharge(7) {
		t.Error("TakeCharge must not consume charges appended in this run")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	want := []Charge{{Key: 7, HITs: 2, Assignments: 3}, {Key: 7, HITs: 1, Assignments: 3}, {Key: 9, HITs: 4, Assignments: 5}}
	got := r.Charges()
	if len(got) != len(want) {
		t.Fatalf("Charges() = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Charges()[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Pops are per-key and bounded by the recovered count; Charges()
	// keeps the full recovered list for ledger reconstruction.
	if !r.TakeCharge(7) || !r.TakeCharge(7) {
		t.Error("TakeCharge(7) must succeed twice (two recovered records)")
	}
	if r.TakeCharge(7) {
		t.Error("third TakeCharge(7) must report not-charged")
	}
	if !r.TakeCharge(9) {
		t.Error("TakeCharge(9) must succeed once")
	}
	if r.TakeCharge(11) {
		t.Error("TakeCharge of unknown key must report not-charged")
	}
	if n := len(r.Charges()); n != 3 {
		t.Errorf("Charges() after pops = %d records, want 3 (full recovered list)", n)
	}
}

func TestReplayFIFOPerKey(t *testing.T) {
	path := tempJournal(t)
	j := mustCreate(t, path)
	if err := j.LogResult(3, sampleResult("first")); err != nil {
		t.Fatal(err)
	}
	if err := j.LogResult(3, sampleResult("second")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Replay(3).Assignments[0].HITID; got != "first" {
		t.Errorf("first replay = %q, want recording order", got)
	}
	if got := r.Replay(3).Assignments[0].HITID; got != "second" {
		t.Errorf("second replay = %q, want recording order", got)
	}
}

func TestCheckpointDivergenceFailsLoudly(t *testing.T) {
	path := tempJournal(t)
	j := mustCreate(t, path)
	if err := j.Checkpoint("join-build", "j0.b", 0x1111, 0); err != nil {
		t.Fatal(err)
	}
	j.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	err = r.Checkpoint("join-build", "j0.b", 0x2222, 0)
	if err == nil {
		t.Fatal("mismatched checkpoint digest must fail")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Errorf("error %q does not wrap ErrDiverged", err)
	}
}

func TestSealAndReopen(t *testing.T) {
	path := tempJournal(t)
	j := mustCreate(t, path)
	if err := j.Seal(SealComplete); err != nil {
		t.Fatal(err)
	}
	j.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if sealed, reason := r.Sealed(); !sealed || reason != SealComplete {
		t.Errorf("Sealed() = %v %q, want true %q", sealed, reason, SealComplete)
	}
	// Appending past the seal reopens the journal.
	if err := r.LogIntent(1, "g", nil); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if sealed, _ := r2.Sealed(); sealed {
		t.Error("record appended after seal must clear the sealed state")
	}
}

func TestCreateRefusesExistingFile(t *testing.T) {
	path := tempJournal(t)
	j := mustCreate(t, path)
	j.Close()
	if _, err := Create(path, Meta{}); err == nil {
		t.Fatal("Create over an existing journal must fail")
	}
}

func TestClosedJournalRefusesAppends(t *testing.T) {
	path := tempJournal(t)
	j := mustCreate(t, path)
	j.Close()
	if err := j.LogIntent(1, "g", nil); err == nil {
		t.Error("append after Close must fail")
	}
	if err := j.Close(); err != nil {
		t.Errorf("double Close must be a no-op, got %v", err)
	}
}

// --- Torn-write recovery (satellite: crash-mid-write cases) ---

// writeAndSize produces a journal with two complete records (meta +
// one intent) and returns its byte size after just the meta record and
// the full size, so tests can slice precisely.
func tornFixture(t *testing.T) (path string, metaOnly, full int64) {
	t.Helper()
	path = tempJournal(t)
	j := mustCreate(t, path)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	metaOnly = st.Size()
	if err := j.LogIntent(42, "filter@q.g0", []string{"h0"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	st, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, metaOnly, st.Size()
}

// reopenAndCheck opens the journal and asserts the intent record
// either survived or was truncated away, then verifies the journal is
// appendable again (recovery repositions the write offset).
func reopenAndCheck(t *testing.T, path string, wantPending int) {
	t.Helper()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.PendingIntents(); got != wantPending {
		t.Errorf("PendingIntents after recovery = %d, want %d", got, wantPending)
	}
	if err := r.LogIntent(43, "filter@q.g1", nil); err != nil {
		t.Errorf("journal not appendable after recovery: %v", err)
	}
}

func TestRecoveryTruncatesPartialHeader(t *testing.T) {
	path, metaOnly, _ := tornFixture(t)
	// Leave 3 of the intent record's 8 header bytes: torn header.
	if err := os.Truncate(path, metaOnly+3); err != nil {
		t.Fatal(err)
	}
	reopenAndCheck(t, path, 0)
}

func TestRecoveryTruncatesShortPayload(t *testing.T) {
	path, metaOnly, full := tornFixture(t)
	// Keep the full header but cut the payload short.
	if err := os.Truncate(path, (metaOnly+8+full)/2); err != nil {
		t.Fatal(err)
	}
	reopenAndCheck(t, path, 0)
}

func TestRecoveryDropsCorruptCRC(t *testing.T) {
	path, metaOnly, full := tornFixture(t)
	// Flip one payload byte of the intent record: CRC mismatch.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	pos := metaOnly + 8 + (full-metaOnly-8)/2
	var b [1]byte
	if _, err := f.ReadAt(b[:], pos); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], pos); err != nil {
		t.Fatal(err)
	}
	f.Close()
	reopenAndCheck(t, path, 0)
}

func TestRecoveryKeepsCompleteRecordsBeforeTear(t *testing.T) {
	path, _, full := tornFixture(t)
	// Append garbage past the last complete record: only it is dropped.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	reopenAndCheck(t, path, 1)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() < full {
		t.Errorf("recovery truncated complete records: size %d < %d", st.Size(), full)
	}
}

func TestRecoveryRejectsOversizedLength(t *testing.T) {
	path, metaOnly, _ := tornFixture(t)
	// Rewrite the intent record's length prefix to an absurd value; Open
	// must treat it as tail corruption, not an allocation request.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, metaOnly); err != nil {
		t.Fatal(err)
	}
	f.Close()
	reopenAndCheck(t, path, 0)
}

func TestOpenRejectsJournalWithoutMeta(t *testing.T) {
	path := tempJournal(t)
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("empty journal must not open")
	}
	// A journal whose meta record itself is torn is unusable too.
	if err := os.WriteFile(path, []byte{0x04, 0x00}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("journal with torn meta must not open")
	}
}
