package wal

import (
	"hash/fnv"
	"io"

	"qurk/internal/crowd"
	"qurk/internal/hit"
)

// Market wraps a crowd.Marketplace with the journal: every group run
// through it is preceded by a durable intent record and followed by a
// durable result record, and on resume a group whose result was
// already journaled replays from disk without touching the inner
// marketplace at all. Groups with an intent but no result — the crash
// window — are re-posted; both backends absorb the re-post
// idempotently (MTurk re-attaches to live HITs by UniqueRequestToken,
// the simulator re-derives the same deterministic answers).
//
// Market implements both crowd.Marketplace and crowd.StreamMarketplace
// so every posting path in the executor — the chunked poster's async
// chunks, the blocking sort/join phases, and the streaming extraction
// deliveries — flows through the journal.
type Market struct {
	inner crowd.Marketplace
	j     *Journal
}

// NewMarket wraps inner so all traffic is journaled to j.
func NewMarket(inner crowd.Marketplace, j *Journal) *Market {
	return &Market{inner: inner, j: j}
}

// Unwrap returns the wrapped marketplace.
func (m *Market) Unwrap() crowd.Marketplace { return m.inner }

// GroupKey fingerprints a HIT group's full content — group ID, HIT
// IDs (including retry lineages), assignment counts, and every
// question's cache key — so a journaled result can only replay into
// the identical group on resume. Group IDs are unique per plan path
// and HIT IDs unique within a run, so keys never collide in practice;
// the journal still queues per key FIFO for safety.
func GroupKey(g *hit.Group) uint64 {
	h := fnv.New64a()
	io.WriteString(h, g.ID)
	var b [8]byte
	for _, ht := range g.HITs {
		b[0] = 0xfe
		h.Write(b[:1])
		io.WriteString(h, ht.ID)
		putUint64(h, uint64(ht.Assignments))
		putUint64(h, uint64(ht.RewardCents))
		for i := range ht.Questions {
			q := &ht.Questions[i]
			io.WriteString(h, q.ID)
			putUint64(h, q.CacheKey())
		}
	}
	return h.Sum64()
}

func putUint64(w io.Writer, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	w.Write(b[:])
}

func hitIDs(g *hit.Group) []string {
	ids := make([]string, len(g.HITs))
	for i, h := range g.HITs {
		ids[i] = h.ID
	}
	return ids
}

// Run implements crowd.Marketplace: replay if journaled, otherwise
// intent → post → result.
func (m *Market) Run(g *hit.Group) (*crowd.RunResult, error) {
	key := GroupKey(g)
	if res := m.j.Replay(key); res != nil {
		return res, nil
	}
	if err := m.j.LogIntent(key, g.ID, hitIDs(g)); err != nil {
		return nil, err
	}
	res, err := m.inner.Run(g)
	if err != nil {
		return nil, err
	}
	if err := m.j.LogResult(key, res); err != nil {
		return nil, err
	}
	return res, nil
}

// RunAsync implements crowd.Marketplace. The intent record commits
// synchronously, before the inner post is even issued, so a crash
// between the two leaves a pending intent the resume path re-posts.
func (m *Market) RunAsync(g *hit.Group) <-chan crowd.Async {
	key := GroupKey(g)
	ch := make(chan crowd.Async, 1)
	if res := m.j.Replay(key); res != nil {
		ch <- crowd.Async{Result: res}
		return ch
	}
	if err := m.j.LogIntent(key, g.ID, hitIDs(g)); err != nil {
		ch <- crowd.Async{Err: err}
		return ch
	}
	inner := m.inner.RunAsync(g)
	go func() {
		a := <-inner
		if a.Err == nil {
			if err := m.j.LogResult(key, a.Result); err != nil {
				a = crowd.Async{Err: err}
			}
		}
		ch <- a
	}()
	return ch
}

// RunStream implements crowd.StreamMarketplace. Live runs stream
// through the inner marketplace and journal the folded result at the
// end — a crash mid-stream leaves no result record, so the whole group
// re-posts on resume (delivery is idempotent; results are deterministic
// per HIT). Replayed runs re-deliver per HIT from the journaled
// result, grouped exactly like crowd.Stream's blocking fallback.
func (m *Market) RunStream(g *hit.Group, deliver func(hitID string, as []hit.Assignment)) (*crowd.RunResult, error) {
	key := GroupKey(g)
	if res := m.j.Replay(key); res != nil {
		if deliver != nil {
			byHIT := map[string][]hit.Assignment{}
			var order []string
			for _, a := range res.Assignments {
				if _, seen := byHIT[a.HITID]; !seen {
					order = append(order, a.HITID)
				}
				byHIT[a.HITID] = append(byHIT[a.HITID], a)
			}
			for _, id := range order {
				deliver(id, byHIT[id])
			}
		}
		return res, nil
	}
	if err := m.j.LogIntent(key, g.ID, hitIDs(g)); err != nil {
		return nil, err
	}
	res, err := crowd.Stream(m.inner, g, deliver)
	if err != nil {
		return nil, err
	}
	if err := m.j.LogResult(key, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Checkpoint forwards breaker checkpoints to the journal; operators
// that only see a crowd.Marketplace (the adaptive filter's vote loop)
// reach the journal through this optional method.
func (m *Market) Checkpoint(kind, label string, digest uint64, clock float64) error {
	return m.j.Checkpoint(kind, label, digest, clock)
}
