// Package wal is the durability layer for crowd queries: an
// append-only, fsync-on-commit, length-prefixed record journal that the
// engine writes at every marketplace boundary, plus the replay
// machinery qurk.Resume uses to rebuild operator state after a crash.
//
// A crowd query spends real dollars per HIT and runs for hours; losing
// in-flight state to a process crash must not re-pay for answers
// already collected. The journal records an intent before each HIT
// group is posted and a result after its votes are folded, so a
// resumed run replays completed groups from disk (zero marketplace
// calls, zero duplicate spend) and re-posts only groups whose result
// never committed — which the backends absorb idempotently (MTurk via
// UniqueRequestToken re-attach, the simulator by re-deriving the same
// deterministic answers).
//
// Record framing (grown from internal/spill's run-file encoding, with
// integrity added): a fixed 8-byte header — uint32 little-endian
// payload length, then uint32 little-endian CRC-32 (IEEE) of the
// payload — followed by the JSON payload. Every commit is fsynced
// before the caller proceeds, so the journal never claims work that
// was not durably recorded. A torn tail (partial header, short
// payload, or CRC mismatch from a crash mid-write) is truncated on
// Open, and recovery resumes from the last complete record.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"qurk/internal/crowd"
)

// Record types, stored in each record's "t" field.
const (
	recMeta       = "meta"
	recIntent     = "intent"
	recResult     = "result"
	recCheckpoint = "checkpoint"
	recCharge     = "charge"
	recSeal       = "seal"
)

// SealComplete is the seal reason written when a durable run finishes
// normally; any other reason marks an interrupted-but-clean shutdown.
const SealComplete = "complete"

// maxRecordBytes bounds a single record; a length prefix beyond it is
// treated as tail corruption rather than an allocation request.
const maxRecordBytes = 1 << 28 // 256 MiB

// Meta identifies the query a journal belongs to. Resume refuses a
// journal whose fingerprint does not match the query and engine
// configuration it was asked to resume, since replaying one query's
// results into another would silently corrupt both.
type Meta struct {
	// Version is the journal format version.
	Version int `json:"version"`
	// Query is the DSL source text, kept for human inspection.
	Query string `json:"query"`
	// Backend names the marketplace implementation (e.g. "sim",
	// "*mturk.Client").
	Backend string `json:"backend"`
	// Fingerprint hashes the query source, engine options, and backend
	// so a journal can only resume the run that created it.
	Fingerprint uint64 `json:"fingerprint"`
}

// record is the on-disk JSON payload; exactly one of the per-type
// field groups is populated, keyed by T.
type record struct {
	T string `json:"t"`
	// meta
	Meta *Meta `json:"meta,omitempty"`
	// intent + result
	Key     uint64           `json:"key,omitempty"`
	GroupID string           `json:"group,omitempty"`
	HITIDs  []string         `json:"hits,omitempty"`
	Result  *crowd.RunResult `json:"result,omitempty"`
	// checkpoint
	Kind   string  `json:"kind,omitempty"`
	Label  string  `json:"label,omitempty"`
	Digest uint64  `json:"digest,omitempty"`
	Clock  float64 `json:"clock,omitempty"`
	// charge
	ChargeHITs int `json:"chits,omitempty"`
	ChargeAsn  int `json:"casn,omitempty"`
	// seal
	Reason string `json:"reason,omitempty"`
}

// Charge is one journaled budget charge: a HIT group that was priced
// against a tenant's budget before it was posted. The multi-tenant
// service writes one per group, after the in-memory ledger charge
// commits and before the group reaches the marketplace, so a restarted
// daemon can rebuild the tenant ledger exactly — groups charged before
// the crash are restored from these records and never charged again
// when the resumed run re-posts or replays them.
type Charge struct {
	// Key is the charged group's content key (Market.GroupKey).
	Key uint64
	// HITs is the group's HIT count; Assignments the per-HIT assignment
	// level the ledger entry was recorded at.
	HITs, Assignments int
}

// checkpoint is one recorded breaker checkpoint awaiting verification
// on replay.
type checkpoint struct {
	digest uint64
	clock  float64
}

// ErrDiverged reports that a resumed run recomputed a breaker
// checkpoint whose digest differs from the recorded one — the inputs
// or configuration changed since the journal was written, and
// continuing would mix two different runs' state.
var ErrDiverged = errors.New("wal: resumed run diverged from journal")

// Journal is an open write-ahead journal. All methods are safe for
// concurrent use; every append is fsynced before it returns.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	meta Meta

	// Replay state loaded by Open. Results queue FIFO per content key
	// so even two identical groups (impossible today — group IDs are
	// unique per plan path — but cheap to be safe about) replay in
	// recording order.
	results map[uint64][]*crowd.RunResult
	pending map[uint64]int // intents without a matching result
	cps     map[string][]checkpoint
	// charges queues loaded budget-charge records FIFO per group key
	// (TakeCharge pops them); loaded keeps the full recovered list for
	// ledger reconstruction, which must see every charge even after the
	// resumed run starts consuming the queue.
	charges map[uint64]int
	loaded  []Charge
	sealed  bool
	reason  string
}

// Create starts a fresh journal at path, failing if one already
// exists, and durably writes the meta record.
func Create(path string, meta Meta) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	if meta.Version == 0 {
		meta.Version = 1
	}
	j := &Journal{
		f:       f,
		path:    path,
		meta:    meta,
		results: map[uint64][]*crowd.RunResult{},
		pending: map[uint64]int{},
		cps:     map[string][]checkpoint{},
		charges: map[uint64]int{},
	}
	if err := j.append(&record{T: recMeta, Meta: &meta}); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return j, nil
}

// Open reads an existing journal, truncates any torn tail record left
// by a crash mid-write, loads the replay state, and positions the file
// for appending new records.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	j := &Journal{
		f:       f,
		path:    path,
		results: map[uint64][]*crowd.RunResult{},
		pending: map[uint64]int{},
		cps:     map[string][]checkpoint{},
		charges: map[uint64]int{},
	}
	if err := j.load(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// load scans every complete record, building replay state, and
// truncates the file at the first torn or corrupt record.
func (j *Journal) load() error {
	var off int64
	var hdr [8]byte
	sawMeta := false
	for {
		_, err := io.ReadFull(j.f, hdr[:])
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			// Torn header: crash mid-write. Recover to the last
			// complete record.
			break
		}
		if err != nil {
			return fmt.Errorf("wal: read: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecordBytes {
			break // corrupt length — treat as torn tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(j.f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break // torn payload
			}
			return fmt.Errorf("wal: read: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt payload
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // corrupt JSON despite CRC: treat as tail damage
		}
		if !sawMeta && rec.T != recMeta {
			return fmt.Errorf("wal: %s: first record is %q, not meta", j.path, rec.T)
		}
		j.apply(&rec)
		sawMeta = true
		off += int64(8 + length)
	}
	if !sawMeta {
		return fmt.Errorf("wal: %s: no complete meta record", j.path)
	}
	if err := j.f.Truncate(off); err != nil {
		return fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := j.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	return nil
}

// apply folds one recovered record into the replay state.
func (j *Journal) apply(rec *record) {
	switch rec.T {
	case recMeta:
		j.meta = *rec.Meta
	case recIntent:
		j.pending[rec.Key]++
	case recResult:
		j.results[rec.Key] = append(j.results[rec.Key], rec.Result)
		if j.pending[rec.Key] > 0 {
			j.pending[rec.Key]--
		}
	case recCheckpoint:
		k := cpKey(rec.Kind, rec.Label)
		j.cps[k] = append(j.cps[k], checkpoint{digest: rec.Digest, clock: rec.Clock})
	case recCharge:
		j.charges[rec.Key]++
		j.loaded = append(j.loaded, Charge{Key: rec.Key, HITs: rec.ChargeHITs, Assignments: rec.ChargeAsn})
	case recSeal:
		j.sealed = true
		j.reason = rec.Reason
	}
	if rec.T != recSeal {
		// Any record after a seal reopens the journal: a resumed run
		// appended past a clean-interrupt marker.
		j.sealed = false
	}
}

func cpKey(kind, label string) string { return kind + "\x00" + label }

// append encodes, writes, and fsyncs one record. Caller holds no lock;
// append takes it.
func (j *Journal) append(rec *record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("wal: encode: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("wal: record too large (%d bytes)", len(payload))
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("wal: journal closed")
	}
	if _, err := j.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	if _, err := j.f.Write(payload); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// Meta returns the journal's identifying meta record.
func (j *Journal) Meta() Meta {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.meta
}

// Sealed reports whether the journal's last record is a seal, and its
// reason. A sealed journal ended cleanly — SealComplete for a finished
// run, anything else for a graceful interrupt.
func (j *Journal) Sealed() (bool, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sealed, j.reason
}

// PendingIntents counts groups whose posting intent committed but
// whose result never did — the groups a resumed run will re-post.
func (j *Journal) PendingIntents() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, c := range j.pending {
		n += c
	}
	return n
}

// ReplayableResults counts group results loaded from disk that have
// not yet been consumed by Replay.
func (j *Journal) ReplayableResults() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, q := range j.results {
		n += len(q)
	}
	return n
}

// LogIntent durably records that a group is about to be posted.
func (j *Journal) LogIntent(key uint64, groupID string, hitIDs []string) error {
	return j.append(&record{T: recIntent, Key: key, GroupID: groupID, HITIDs: hitIDs})
}

// LogResult durably records a completed group's folded outcome.
func (j *Journal) LogResult(key uint64, res *crowd.RunResult) error {
	return j.append(&record{T: recResult, Key: key, Result: res})
}

// LogCharge durably records that a group's HITs were charged to the
// tenant's budget ledger. It is written after the in-memory charge
// commits and before the group posts, so a crash in between replays as
// "already charged". Live appends do not enter the recovered-charge
// queue: only records loaded at Open are consumable by TakeCharge.
func (j *Journal) LogCharge(key uint64, hits, assignments int) error {
	return j.append(&record{T: recCharge, Key: key, ChargeHITs: hits, ChargeAsn: assignments})
}

// TakeCharge pops one recovered charge record for key, reporting
// whether the group was already charged before the crash — the caller
// must then skip re-charging the tenant for it.
func (j *Journal) TakeCharge(key uint64) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.charges[key] == 0 {
		return false
	}
	j.charges[key]--
	if j.charges[key] == 0 {
		delete(j.charges, key)
	}
	return true
}

// Charges returns every charge record recovered at Open, in journal
// order. Recovery uses it to rebuild the tenant's ledger before the
// resumed run starts consuming the queue via TakeCharge.
func (j *Journal) Charges() []Charge {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Charge, len(j.loaded))
	copy(out, j.loaded)
	return out
}

// Replay pops the recorded result for a group key, or nil when the
// journal holds none — the group must then be (re-)posted for real.
func (j *Journal) Replay(key uint64) *crowd.RunResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	q := j.results[key]
	if len(q) == 0 {
		return nil
	}
	res := q[0]
	if len(q) == 1 {
		delete(j.results, key)
	} else {
		j.results[key] = q[1:]
	}
	return res
}

// Checkpoint implements core.JournalSink: it verifies a recomputed
// breaker checkpoint against the journal when one was recorded
// (failing loudly with ErrDiverged on mismatch) and durably appends it
// otherwise. Each (kind, label) keeps its own FIFO so concurrent
// operator phases cannot race each other's checkpoints.
func (j *Journal) Checkpoint(kind, label string, digest uint64, clock float64) error {
	j.mu.Lock()
	k := cpKey(kind, label)
	if q := j.cps[k]; len(q) > 0 {
		rec := q[0]
		if len(q) == 1 {
			delete(j.cps, k)
		} else {
			j.cps[k] = q[1:]
		}
		j.mu.Unlock()
		if rec.digest != digest {
			return fmt.Errorf("%w: %s %q digest %#x, journal has %#x", ErrDiverged, kind, label, digest, rec.digest)
		}
		return nil
	}
	j.mu.Unlock()
	return j.append(&record{T: recCheckpoint, Kind: kind, Label: label, Digest: digest, Clock: clock})
}

// Seal durably marks a clean end of the journal. Reason SealComplete
// means the run finished; any other reason records why it stopped. A
// sealed journal still resumes — resuming a complete one just replays
// everything and returns the same result.
func (j *Journal) Seal(reason string) error {
	if err := j.append(&record{T: recSeal, Reason: reason}); err != nil {
		return err
	}
	j.mu.Lock()
	j.sealed = true
	j.reason = reason
	j.mu.Unlock()
	return nil
}

// Close releases the journal file. It does not seal; a journal closed
// without sealing reads as crashed-but-consistent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }
