package spill

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"qurk/internal/relation"
)

// Binary run codec. A run file is:
//
//	magic    "QSPL" + version byte (1)
//	header   one frame whose payload describes the schema:
//	           uvarint ncols, then per column: kind byte,
//	           uvarint len(name), name bytes
//	frames   zero or more data frames
//
// Every frame — header included — is length-prefixed and checksummed
// exactly like internal/wal's records:
//
//	[payloadLen uint32 LE][crc32(IEEE) uint32 LE][payload]
//
// A data frame's payload holds up to frameRows rows column-major:
//
//	uvarint nrows
//	per column: nrows kind bytes, then for each row whose kind takes a
//	payload (in row order):
//	  text/url  uvarint byteLen + bytes
//	  int       zigzag varint
//	  float     8 bytes LE (IEEE-754 bits)
//	  bool      1 byte (0/1)
//
// NULL and UNKNOWN carry no payload — absence is encoded purely by the
// kind tag, which is also how the columnar batches represent it.
//
// Corruption of any byte is detected by the CRC before the payload is
// parsed; parsing itself bounds every count and length by the bytes
// actually present, so a torn or hostile input yields an error, never a
// panic and never an unbounded allocation.

const (
	runMagic = "QSPL\x01"

	// frameRows caps rows per data frame; frameBytes flushes a frame
	// early when large string payloads accumulate, keeping decode
	// buffers bounded.
	frameRows  = 256
	frameBytes = 1 << 20

	// maxFramePayload bounds the decoder's buffer: a frame larger than
	// this is rejected as corrupt. The writer can only exceed it if a
	// single row carries more than 64 MiB of payload.
	maxFramePayload = 64 << 20
)

// errCorrupt wraps every decode-side integrity failure so callers (and
// the fuzz harness) can distinguish detected corruption from I/O
// errors.
var errCorrupt = errors.New("spill: corrupt run data")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errCorrupt, fmt.Sprintf(format, args...))
}

// frameWriter encodes tuples into CRC-framed binary frames on w.
type frameWriter struct {
	w       io.Writer
	ncols   int
	pending []relation.Tuple
	payload []byte // reused frame payload buffer
	head    [8]byte
}

// newFrameWriter writes the magic and schema header and returns a
// writer accepting tuples.
func newFrameWriter(w io.Writer, schema *relation.Schema) (*frameWriter, error) {
	fw := &frameWriter{w: w, ncols: schema.Len()}
	if _, err := io.WriteString(w, runMagic); err != nil {
		return nil, err
	}
	p := fw.payload[:0]
	p = binary.AppendUvarint(p, uint64(schema.Len()))
	for i := 0; i < schema.Len(); i++ {
		c := schema.Column(i)
		p = append(p, byte(c.Kind))
		p = binary.AppendUvarint(p, uint64(len(c.Name)))
		p = append(p, c.Name...)
	}
	fw.payload = p
	if err := fw.writeFrame(p); err != nil {
		return nil, err
	}
	return fw, nil
}

func (fw *frameWriter) writeFrame(payload []byte) error {
	binary.LittleEndian.PutUint32(fw.head[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(fw.head[4:8], crc32.ChecksumIEEE(payload))
	if _, err := fw.w.Write(fw.head[:]); err != nil {
		return err
	}
	_, err := fw.w.Write(payload)
	return err
}

// add stages one tuple, flushing a frame at the row or byte bound.
func (fw *frameWriter) add(t relation.Tuple) error {
	fw.pending = append(fw.pending, t)
	if len(fw.pending) >= frameRows {
		return fw.flush()
	}
	return nil
}

// flush encodes and writes the staged rows as one data frame.
func (fw *frameWriter) flush() error {
	if len(fw.pending) == 0 {
		return nil
	}
	p := fw.payload[:0]
	p = binary.AppendUvarint(p, uint64(len(fw.pending)))
	for c := 0; c < fw.ncols; c++ {
		for _, t := range fw.pending {
			p = append(p, byte(t.At(c).Kind()))
		}
		for _, t := range fw.pending {
			v := t.At(c)
			switch v.Kind() {
			case relation.KindNull, relation.KindUnknown:
				// kind tag only
			case relation.KindText, relation.KindURL:
				s := v.Text()
				p = binary.AppendUvarint(p, uint64(len(s)))
				p = append(p, s...)
			case relation.KindInt:
				p = binary.AppendVarint(p, v.Int())
			case relation.KindFloat:
				p = binary.LittleEndian.AppendUint64(p, math.Float64bits(v.Float()))
			case relation.KindBool:
				b := byte(0)
				if v.Bool() {
					b = 1
				}
				p = append(p, b)
			default:
				return fmt.Errorf("spill: unknown value kind %d", v.Kind())
			}
			if len(p) >= frameBytes && len(fw.pending) > 1 {
				// Oversized strings: split the staged rows rather than
				// growing the frame without bound. Re-encode the first
				// half alone, then the rest.
				half := len(fw.pending) / 2
				rest := append([]relation.Tuple(nil), fw.pending[half:]...)
				fw.pending = fw.pending[:half]
				if err := fw.flush(); err != nil {
					return err
				}
				fw.pending = rest
				return fw.flush()
			}
		}
	}
	fw.payload = p
	fw.pending = fw.pending[:0]
	return fw.writeFrame(p)
}

// finish flushes any staged rows. It does not close the underlying
// writer.
func (fw *frameWriter) finish() error { return fw.flush() }

// frameReader decodes a binary run stream frame by frame, handing out
// tuples backed by per-frame value arenas (never pooled, so tuples
// outlive the reader).
type frameReader struct {
	r      *bufio.Reader
	schema *relation.Schema
	ncols  int
	buf    []byte // reused frame read buffer
	rows   []relation.Tuple
	idx    int
	err    error
}

// newFrameReader validates the magic and schema header. schema is the
// expected tuple schema; the embedded header must agree on arity and
// kinds.
func newFrameReader(r io.Reader, schema *relation.Schema) (*frameReader, error) {
	fr := &frameReader{r: bufio.NewReader(r), schema: schema, ncols: schema.Len()}
	var magic [len(runMagic)]byte
	if _, err := io.ReadFull(fr.r, magic[:]); err != nil {
		return nil, corruptf("missing magic: %v", err)
	}
	if string(magic[:]) != runMagic {
		return nil, corruptf("bad magic %q", magic[:])
	}
	payload, err := fr.readFrame()
	if err != nil {
		return nil, err
	}
	if payload == nil {
		return nil, corruptf("missing schema header")
	}
	pos := 0
	ncols, n := binary.Uvarint(payload)
	if n <= 0 || ncols != uint64(fr.ncols) {
		return nil, corruptf("header declares %d columns, want %d", ncols, fr.ncols)
	}
	pos += n
	for i := 0; i < fr.ncols; i++ {
		if pos >= len(payload) {
			return nil, corruptf("truncated header at column %d", i)
		}
		kind := relation.Kind(payload[pos])
		pos++
		if kind != schema.Column(i).Kind {
			return nil, corruptf("header column %d kind %d, want %d", i, kind, schema.Column(i).Kind)
		}
		nameLen, n := binary.Uvarint(payload[pos:])
		if n <= 0 || nameLen > uint64(len(payload)-pos-n) {
			return nil, corruptf("bad column %d name length", i)
		}
		pos += n + int(nameLen)
	}
	return fr, nil
}

// readFrame reads one [len][crc][payload] frame into the reused buffer.
// It returns (nil, nil) at a clean end of stream.
func (fr *frameReader) readFrame() ([]byte, error) {
	var head [8]byte
	if _, err := io.ReadFull(fr.r, head[:]); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, corruptf("torn frame header: %v", err)
	}
	plen := binary.LittleEndian.Uint32(head[0:4])
	sum := binary.LittleEndian.Uint32(head[4:8])
	if plen > maxFramePayload {
		return nil, corruptf("frame payload %d exceeds bound", plen)
	}
	if cap(fr.buf) < int(plen) {
		fr.buf = make([]byte, plen)
	}
	fr.buf = fr.buf[:plen]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		return nil, corruptf("torn frame payload: %v", err)
	}
	if crc32.ChecksumIEEE(fr.buf) != sum {
		return nil, corruptf("frame CRC mismatch")
	}
	return fr.buf, nil
}

// decodeFrame parses one data frame into an arena of row tuples. The
// payload is copied into one immutable string block first, so decoded
// text values are zero-copy substrings of a single allocation.
func (fr *frameReader) decodeFrame(raw []byte) ([]relation.Tuple, error) {
	p := string(raw)
	pos := 0
	nrows64, n := binary.Uvarint(raw)
	if n <= 0 {
		return nil, corruptf("bad row count")
	}
	pos += n
	// Each row costs at least one kind byte per column, so the byte
	// budget bounds the declared count before any allocation.
	if fr.ncols > 0 && nrows64 > uint64(len(p)-pos)/uint64(fr.ncols) {
		return nil, corruptf("row count %d exceeds frame bytes", nrows64)
	}
	if fr.ncols == 0 && nrows64 > frameRows {
		return nil, corruptf("row count %d for zero-column schema", nrows64)
	}
	nrows := int(nrows64)
	arena := make([]relation.Value, nrows*fr.ncols)
	for c := 0; c < fr.ncols; c++ {
		if len(p)-pos < nrows {
			return nil, corruptf("truncated kind tags in column %d", c)
		}
		kinds := p[pos : pos+nrows]
		pos += nrows
		for r := 0; r < nrows; r++ {
			k := relation.Kind(kinds[r])
			slot := &arena[r*fr.ncols+c]
			switch k {
			case relation.KindNull:
				*slot = relation.Null()
			case relation.KindUnknown:
				*slot = relation.Unknown()
			case relation.KindText, relation.KindURL:
				slen, n := binary.Uvarint(raw[pos:])
				if n <= 0 || slen > uint64(len(p)-pos-n) {
					return nil, corruptf("bad string length in column %d row %d", c, r)
				}
				pos += n
				s := p[pos : pos+int(slen)]
				pos += int(slen)
				if k == relation.KindText {
					*slot = relation.Text(s)
				} else {
					*slot = relation.URL(s)
				}
			case relation.KindInt:
				iv, n := binary.Varint(raw[pos:])
				if n <= 0 {
					return nil, corruptf("bad int in column %d row %d", c, r)
				}
				pos += n
				*slot = relation.Int(iv)
			case relation.KindFloat:
				if len(p)-pos < 8 {
					return nil, corruptf("truncated float in column %d row %d", c, r)
				}
				*slot = relation.Float(math.Float64frombits(binary.LittleEndian.Uint64(raw[pos:])))
				pos += 8
			case relation.KindBool:
				if len(p)-pos < 1 {
					return nil, corruptf("truncated bool in column %d row %d", c, r)
				}
				*slot = relation.Bool(raw[pos] != 0)
				pos++
			default:
				return nil, corruptf("unknown value kind %d in column %d row %d", k, c, r)
			}
		}
	}
	if pos != len(p) {
		return nil, corruptf("%d trailing bytes after frame body", len(p)-pos)
	}
	return relation.RowsOver(fr.schema, arena), nil
}

// next returns the stream's next tuple, or ok=false at a clean end.
func (fr *frameReader) next() (relation.Tuple, bool, error) {
	if fr.err != nil {
		return relation.Tuple{}, false, fr.err
	}
	for fr.idx >= len(fr.rows) {
		raw, err := fr.readFrame()
		if err != nil {
			fr.err = err
			return relation.Tuple{}, false, err
		}
		if raw == nil {
			return relation.Tuple{}, false, nil
		}
		rows, err := fr.decodeFrame(raw)
		if err != nil {
			fr.err = err
			return relation.Tuple{}, false, err
		}
		fr.rows, fr.idx = rows, 0
	}
	t := fr.rows[fr.idx]
	fr.idx++
	return t, true, nil
}
