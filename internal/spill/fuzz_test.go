package spill

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"qurk/internal/relation"
)

// fuzzKinds are the kinds the round-trip fuzzer can mint; index by
// input byte modulo len.
var fuzzKinds = []relation.Kind{
	relation.KindNull, relation.KindText, relation.KindInt,
	relation.KindFloat, relation.KindBool, relation.KindURL,
	relation.KindUnknown,
}

// takeBytes consumes up to n bytes of data at *pos, clamping both ends
// to the input (next() may already have advanced past it).
func takeBytes(data []byte, pos *int, n int) []byte {
	start := *pos
	if start > len(data) {
		start = len(data)
	}
	end := start + n
	if end > len(data) {
		end = len(data)
	}
	*pos = end
	return data[start:end]
}

// buildFuzzRun interprets raw fuzz bytes as a schema plus rows: byte 0
// picks the column count (1..6), the next ncols bytes pick kinds, and
// the rest is consumed as values. Returns nil if the input is too
// short to describe a schema.
func buildFuzzRun(data []byte) (*relation.Schema, []relation.Tuple) {
	if len(data) < 2 {
		return nil, nil
	}
	ncols := int(data[0])%6 + 1
	if len(data) < 1+ncols {
		return nil, nil
	}
	cols := make([]relation.Column, ncols)
	for i := 0; i < ncols; i++ {
		cols[i] = relation.Column{
			Name: "c" + strconv.Itoa(i),
			Kind: fuzzKinds[int(data[1+i])%len(fuzzKinds)],
		}
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, nil
	}
	pos := 1 + ncols
	next := func() byte {
		if pos >= len(data) {
			pos++
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	var tuples []relation.Tuple
	for pos < len(data) && len(tuples) < 4*frameRows {
		vals := make([]relation.Value, ncols)
		for i := range vals {
			switch fuzzKinds[int(next())%len(fuzzKinds)] {
			case relation.KindNull:
				vals[i] = relation.Null()
			case relation.KindUnknown:
				vals[i] = relation.Unknown()
			case relation.KindBool:
				vals[i] = relation.Bool(next()%2 == 0)
			case relation.KindInt:
				n := int64(next())<<16 | int64(next())<<8 | int64(next())
				if next()%2 == 0 {
					n = -n
				}
				vals[i] = relation.Int(n)
			case relation.KindFloat:
				f := float64(next()) / (float64(next()) + 0.5)
				vals[i] = relation.Float(f)
			case relation.KindText:
				vals[i] = relation.Text(string(takeBytes(data, &pos, int(next())%32)))
			case relation.KindURL:
				vals[i] = relation.URL(string(takeBytes(data, &pos, int(next())%16)))
			}
		}
		tp, err := relation.NewTuple(schema, vals...)
		if err != nil {
			return nil, nil
		}
		tuples = append(tuples, tp)
	}
	return schema, tuples
}

// FuzzRunCodecRoundTrip: arbitrary schemas and rows derived from the
// fuzz input must encode and decode bit-identically — same kinds, same
// renderings, same content hashes.
func FuzzRunCodecRoundTrip(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 0, 1, 2, 'h', 'i', 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 6, 4, 5, 255, 128, 64, 32, 16, 8, 4, 2, 1, 0})
	f.Add(bytes.Repeat([]byte{5, 1, 1, 1, 1, 1, 42}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		schema, tuples := buildFuzzRun(data)
		if schema == nil {
			return
		}
		var buf bytes.Buffer
		fw, err := newFrameWriter(&buf, schema)
		if err != nil {
			t.Fatalf("newFrameWriter: %v", err)
		}
		for _, tp := range tuples {
			if err := fw.add(tp); err != nil {
				t.Fatalf("add: %v", err)
			}
		}
		if err := fw.finish(); err != nil {
			t.Fatalf("finish: %v", err)
		}
		got, err := decodeRunBytes(schema, buf.Bytes())
		if err != nil {
			t.Fatalf("decode of freshly encoded run failed: %v", err)
		}
		if len(got) != len(tuples) {
			t.Fatalf("decoded %d rows, want %d", len(got), len(tuples))
		}
		for i := range tuples {
			for c := 0; c < schema.Len(); c++ {
				a, b := tuples[i].At(c), got[i].At(c)
				if a.Kind() != b.Kind() || a.String() != b.String() {
					t.Fatalf("row %d col %d: %s %q -> %s %q", i, c, a.Kind(), a, b.Kind(), b)
				}
			}
			if tuples[i].Key() != got[i].Key() {
				t.Fatalf("row %d content hash diverged", i)
			}
		}
	})
}

// decodeRunBytes decodes a run stream held in memory (shared by the
// fuzz targets; the unit tests' decodeRun needs *testing.T-free code).
func decodeRunBytes(schema *relation.Schema, data []byte) ([]relation.Tuple, error) {
	fr, err := newFrameReader(bytes.NewReader(data), schema)
	if err != nil {
		return nil, err
	}
	var out []relation.Tuple
	for {
		tp, ok, err := fr.next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, tp)
	}
}

// FuzzRunCodecRecover: arbitrary — torn, bit-flipped, hostile — bytes
// fed to the decoder must never panic and must surface any integrity
// failure as an errCorrupt-tagged error, not as silently wrong rows of
// a well-formed stream it never saw.
func FuzzRunCodecRecover(f *testing.F) {
	schema := relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "s", Kind: relation.KindText},
	)
	// Seed with a valid stream, a truncation, a bit flip, and junk.
	var buf bytes.Buffer
	fw, _ := newFrameWriter(&buf, schema)
	for i := 0; i < 10; i++ {
		fw.add(relation.MustTuple(schema, relation.Int(int64(i)), relation.Text("seed")))
	}
	fw.finish()
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)/2]...))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x80
	f.Add(flipped)
	f.Add([]byte("QSPL\x01garbage that is not a frame"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeRunBytes(schema, data)
		if err != nil && !errors.Is(err, errCorrupt) {
			t.Fatalf("decode error not tagged corrupt: %v", err)
		}
		// Anything decoded before an error (or a clean end) must be
		// well-formed rows of the expected schema.
		for i, tp := range got {
			if tp.Len() != schema.Len() {
				t.Fatalf("row %d has arity %d", i, tp.Len())
			}
			_ = tp.Key()
			_ = tp.String()
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/ when QURK_WRITE_FUZZ_CORPUS=1; a no-op otherwise.
// The committed seeds keep CI's -fuzztime smoke runs anchored on
// inputs that already cover the interesting paths.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("QURK_WRITE_FUZZ_CORPUS") != "1" {
		t.Skip("set QURK_WRITE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	write := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Round-trip seeds: mixed kinds, all-null, long strings, many rows.
	write("FuzzRunCodecRoundTrip", "seed_mixed", []byte{3, 1, 2, 3, 0, 1, 2, 'h', 'i', 5, 6, 7, 8, 9, 10, 11, 12})
	write("FuzzRunCodecRoundTrip", "seed_nulls", []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	write("FuzzRunCodecRoundTrip", "seed_text", append([]byte{1, 1, 1}, bytes.Repeat([]byte("abcdefg"), 30)...))
	write("FuzzRunCodecRoundTrip", "seed_manyrows", bytes.Repeat([]byte{5, 1, 1, 1, 1, 1, 42}, 120))
	// Recover seeds: a valid stream, its torn prefix, a bit flip, junk.
	schema := relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "s", Kind: relation.KindText},
	)
	var buf bytes.Buffer
	fw, err := newFrameWriter(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := fw.add(relation.MustTuple(schema, relation.Int(int64(i)), relation.Text("corpus-seed"))); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.finish(); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	write("FuzzRunCodecRecover", "seed_valid", valid)
	write("FuzzRunCodecRecover", "seed_torn", valid[:len(valid)*2/3])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	write("FuzzRunCodecRecover", "seed_flipped", flipped)
	write("FuzzRunCodecRecover", "seed_junk", []byte("QSPL\x01not a frame at all"))
}
