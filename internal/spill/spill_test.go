package spill

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"qurk/internal/relation"
)

func testSchema(t *testing.T) *relation.Schema {
	t.Helper()
	return relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "s", Kind: relation.KindText},
		relation.Column{Name: "f", Kind: relation.KindFloat},
		relation.Column{Name: "b", Kind: relation.KindBool},
		relation.Column{Name: "u", Kind: relation.KindURL},
	)
}

func testTuple(t *testing.T, s *relation.Schema, i int) relation.Tuple {
	t.Helper()
	return relation.MustTuple(s,
		relation.Int(int64(i%7)),
		relation.Text(fmt.Sprintf("row-%03d", i)),
		relation.Float(float64(i)*0.3333333333333333),
		relation.Bool(i%2 == 0),
		relation.URL(fmt.Sprintf("http://x/%d.jpg", i)),
	)
}

// TestCodecRoundtrip: every value kind survives the run-file codec
// bit-exactly, including floats and the UNKNOWN sentinel.
func TestCodecRoundtrip(t *testing.T) {
	s := relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindText},
		relation.Column{Name: "b", Kind: relation.KindInt},
		relation.Column{Name: "c", Kind: relation.KindFloat},
		relation.Column{Name: "d", Kind: relation.KindBool},
		relation.Column{Name: "e", Kind: relation.KindURL},
		relation.Column{Name: "f", Kind: relation.KindText},
	)
	in := relation.MustTuple(s,
		relation.Text("héllo\nworld"),
		relation.Int(-1<<62),
		relation.Float(1.0/3.0),
		relation.Bool(true),
		relation.URL("http://img/1.jpg"),
		relation.Unknown(),
	)
	var buf bytes.Buffer
	fw, err := newFrameWriter(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.add(in); err != nil {
		t.Fatal(err)
	}
	if err := fw.finish(); err != nil {
		t.Fatal(err)
	}
	fr, err := newFrameReader(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	out, ok, err := fr.next()
	if err != nil || !ok {
		t.Fatalf("next: ok=%v err=%v", ok, err)
	}
	if !in.Equal(out) {
		t.Errorf("roundtrip mismatch:\n in=%v\nout=%v", in, out)
	}
	if !out.At(5).IsUnknown() {
		t.Error("UNKNOWN sentinel lost in roundtrip")
	}
	if _, ok, err := fr.next(); ok || err != nil {
		t.Fatalf("expected clean end of stream, got ok=%v err=%v", ok, err)
	}
}

// TestSorterMatchesSliceStable: the external sort is bit-identical to
// sort.SliceStable over the same input — including duplicate keys,
// whose input order must survive the k-way merge's run tie-breaks.
func TestSorterMatchesSliceStable(t *testing.T) {
	s := testSchema(t)
	less := func(a, b relation.Tuple) bool { return a.MustGet("k").Int() < b.MustGet("k").Int() }
	for _, n := range []int{0, 1, 5, 64, 257} {
		for _, cap := range []int{1, 3, 64} {
			rng := rand.New(rand.NewSource(int64(n*100 + cap)))
			var want []relation.Tuple
			sorter, err := NewSorter(s, cap, less)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				tp := testTuple(t, s, rng.Intn(50))
				want = append(want, tp)
				if err := sorter.Add(tp); err != nil {
					t.Fatal(err)
				}
			}
			sort.SliceStable(want, func(i, j int) bool { return less(want[i], want[j]) })
			it, err := sorter.Sort()
			if err != nil {
				t.Fatal(err)
			}
			var got []relation.Tuple
			for {
				tp, ok, err := it.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				got = append(got, tp)
			}
			it.Close()
			sorter.Close()
			if len(got) != len(want) {
				t.Fatalf("n=%d cap=%d: %d tuples out, want %d", n, cap, len(got), len(want))
			}
			for i := range want {
				if !want[i].Equal(got[i]) {
					t.Fatalf("n=%d cap=%d: row %d = %v, want %v", n, cap, i, got[i], want[i])
				}
			}
		}
	}
}

// TestTableSequentialAndRandomAccess: partitioned rows read back
// identically in sequential scans and after partition switches.
func TestTableSequentialAndRandomAccess(t *testing.T) {
	s := testSchema(t)
	tb, err := NewTable("t", s, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	const n = 23
	var want []relation.Tuple
	for i := 0; i < n; i++ {
		tp := testTuple(t, s, i)
		want = append(want, tp)
		if err := tb.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	// Two full sequential scans (the join re-scans its build side).
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			got, err := tb.Row(i)
			if err != nil {
				t.Fatal(err)
			}
			if !want[i].Equal(got) {
				t.Fatalf("pass %d row %d = %v, want %v", pass, i, got, want[i])
			}
		}
	}
	// Partition-hopping access.
	for _, i := range []int{22, 0, 13, 5, 21, 4, 3} {
		got, err := tb.Row(i)
		if err != nil {
			t.Fatal(err)
		}
		if !want[i].Equal(got) {
			t.Fatalf("random row %d = %v, want %v", i, got, want[i])
		}
	}
}
