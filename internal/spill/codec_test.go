package spill

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"qurk/internal/relation"
)

// encodeRun encodes tuples into one in-memory binary run stream.
func encodeRun(t *testing.T, s *relation.Schema, tuples []relation.Tuple) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw, err := newFrameWriter(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples {
		if err := fw.add(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeRun decodes a binary run stream fully.
func decodeRun(s *relation.Schema, data []byte) ([]relation.Tuple, error) {
	fr, err := newFrameReader(bytes.NewReader(data), s)
	if err != nil {
		return nil, err
	}
	var out []relation.Tuple
	for {
		tp, ok, err := fr.next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, tp)
	}
}

// TestCodecMultiFrame crosses the frameRows boundary so frame cuts and
// the arena handoff between frames are exercised.
func TestCodecMultiFrame(t *testing.T) {
	s := testSchema(t)
	var tuples []relation.Tuple
	for i := 0; i < frameRows*2+17; i++ {
		tuples = append(tuples, testTuple(t, s, i))
	}
	data := encodeRun(t, s, tuples)
	got, err := decodeRun(s, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tuples) {
		t.Fatalf("decoded %d tuples, want %d", len(got), len(tuples))
	}
	for i := range tuples {
		if !tuples[i].Equal(got[i]) {
			t.Fatalf("row %d = %v, want %v", i, got[i], tuples[i])
		}
		if tuples[i].Key() != got[i].Key() {
			t.Fatalf("row %d key diverged through codec", i)
		}
	}
}

// TestCodecDetectsEveryBitFlip is the CRC contract: flipping any single
// byte anywhere in a valid run stream must surface as an error — never
// a panic, never silently different rows.
func TestCodecDetectsEveryBitFlip(t *testing.T) {
	s := testSchema(t)
	var tuples []relation.Tuple
	for i := 0; i < 9; i++ {
		tuples = append(tuples, testTuple(t, s, i))
	}
	data := encodeRun(t, s, tuples)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x41
		if _, err := decodeRun(s, mut); err == nil {
			t.Fatalf("byte flip at offset %d/%d went undetected", i, len(data))
		} else if !errors.Is(err, errCorrupt) {
			t.Fatalf("byte flip at offset %d: error not marked corrupt: %v", i, err)
		}
	}
}

// TestCodecTruncation: cutting the stream mid-frame errors; cutting at
// a frame boundary ends cleanly with the complete frames decoded.
func TestCodecTruncation(t *testing.T) {
	s := testSchema(t)
	var tuples []relation.Tuple
	for i := 0; i < 5; i++ {
		tuples = append(tuples, testTuple(t, s, i))
	}
	data := encodeRun(t, s, tuples)
	sawCleanShort := false
	for cut := 0; cut < len(data); cut++ {
		got, err := decodeRun(s, data[:cut])
		if err == nil {
			// Only complete frames may decode cleanly, and only with a
			// prefix of the original rows.
			sawCleanShort = true
			if len(got) > len(tuples) {
				t.Fatalf("cut %d: %d rows from %d-row stream", cut, len(got), len(tuples))
			}
			for i := range got {
				if !got[i].Equal(tuples[i]) {
					t.Fatalf("cut %d row %d = %v, want %v", cut, i, got[i], tuples[i])
				}
			}
		}
	}
	if !sawCleanShort {
		t.Fatal("no truncation point decoded cleanly — boundary handling suspect")
	}
}

func TestCodecRejectsWrongSchema(t *testing.T) {
	s := testSchema(t)
	data := encodeRun(t, s, []relation.Tuple{testTuple(t, s, 1)})
	other := relation.MustSchema(relation.Column{Name: "only", Kind: relation.KindText})
	if _, err := decodeRun(other, data); !errors.Is(err, errCorrupt) {
		t.Fatalf("wrong-arity schema accepted: %v", err)
	}
	flipped := relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindText}, // kind differs
		relation.Column{Name: "s", Kind: relation.KindText},
		relation.Column{Name: "f", Kind: relation.KindFloat},
		relation.Column{Name: "b", Kind: relation.KindBool},
		relation.Column{Name: "u", Kind: relation.KindURL},
	)
	if _, err := decodeRun(flipped, data); !errors.Is(err, errCorrupt) {
		t.Fatalf("wrong-kind schema accepted: %v", err)
	}
}

// TestCodecOversizedStringsSplitFrames: rows whose string payloads blow
// past frameBytes still round-trip (the writer splits the staged rows).
func TestCodecOversizedStringsSplitFrames(t *testing.T) {
	s := relation.MustSchema(relation.Column{Name: "blob", Kind: relation.KindText})
	big := bytes.Repeat([]byte("x"), frameBytes/2)
	var tuples []relation.Tuple
	for i := 0; i < 6; i++ {
		tuples = append(tuples, relation.MustTuple(s, relation.Text(fmt.Sprintf("%d:%s", i, big))))
	}
	data := encodeRun(t, s, tuples)
	got, err := decodeRun(s, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tuples) {
		t.Fatalf("decoded %d rows, want %d", len(got), len(tuples))
	}
	for i := range tuples {
		if !tuples[i].Equal(got[i]) {
			t.Fatalf("row %d corrupted through frame split", i)
		}
	}
}
