// Package spill gives the executor's pipeline breakers a bounded-memory
// backing store: relations larger than a configured tuple cap are
// written to temporary run files (binary, CRC-framed — see codec.go)
// and read back either partition by partition (Table — the join's build
// side) or as a k-way stable merge of sorted runs (Sorter — external
// sort for ORDER BY and group partitioning). Everything is stdlib-only
// and deterministic: run boundaries are count-based, merges tie-break
// by run index, so a spilling operator produces bit-identical output to
// its in-memory twin at any cap.
package spill

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"qurk/internal/relation"
)

// runPath names run file seq in dir.
func runPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("run%05d.qrun", seq))
}

// writeRun writes tuples to a new binary run file in dir.
func writeRun(dir string, seq int, schema *relation.Schema, tuples []relation.Tuple) (string, error) {
	path := runPath(dir, seq)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	w := bufio.NewWriter(f)
	fw, err := newFrameWriter(w, schema)
	if err != nil {
		f.Close()
		return "", err
	}
	for _, t := range tuples {
		if err := fw.add(t); err != nil {
			f.Close()
			return "", err
		}
	}
	if err := fw.finish(); err != nil {
		f.Close()
		return "", err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// runReader streams one run file tuple by tuple.
type runReader struct {
	f  *os.File
	fr *frameReader
}

func openRun(path string, schema *relation.Schema) (*runReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fr, err := newFrameReader(f, schema)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &runReader{f: f, fr: fr}, nil
}

// next returns the run's next tuple, or ok=false at end of run.
func (r *runReader) next() (relation.Tuple, bool, error) {
	return r.fr.next()
}

func (r *runReader) close() error { return r.f.Close() }

// tempDir creates the spill scratch directory on first use.
func tempDir(current *string) (string, error) {
	if *current != "" {
		return *current, nil
	}
	dir, err := os.MkdirTemp("", "qurk-spill-")
	if err != nil {
		return "", err
	}
	*current = dir
	return dir, nil
}

// --- Digest: order-sensitive state fingerprint ---

// digestMix folds one tuple key into a running order-sensitive
// fingerprint (FNV-1a step over the key's bytes, conceptually). Both
// Table and Sorter expose the running value so pipeline breakers can
// checkpoint their materialized state into a write-ahead journal
// without a second pass over spilled runs.
func digestMix(dig, key uint64) uint64 {
	const prime64 = 1099511628211
	if dig == 0 {
		dig = 14695981039346656037 // FNV offset basis
	}
	for i := 0; i < 8; i++ {
		dig ^= (key >> (8 * i)) & 0xff
		dig *= prime64
	}
	return dig
}

// --- Table: partitioned append-only store (join build side) ---

// Table is an append-only tuple store holding at most cap tuples in
// memory; full partitions spill to disk and are reloaded one at a time
// on access. Sequential scans (the join's repeated build-side passes)
// therefore run in O(cap) memory.
type Table struct {
	name   string
	schema *relation.Schema
	cap    int
	dir    string
	parts  []string // spilled partition files, cap tuples each
	tail   []relation.Tuple
	total  int
	loaded int // index of the cached partition; -1 = none
	cache  []relation.Tuple
	dig    uint64 // running append-order fingerprint
}

// NewTable builds a table spilling past cap tuples (cap must be > 0).
func NewTable(name string, schema *relation.Schema, cap int) (*Table, error) {
	if cap <= 0 {
		return nil, fmt.Errorf("spill: table cap must be positive, got %d", cap)
	}
	return &Table{name: name, schema: schema, cap: cap, loaded: -1}, nil
}

// Name reports the relation name.
func (t *Table) Name() string { return t.name }

// Schema reports the tuple schema.
func (t *Table) Schema() *relation.Schema { return t.schema }

// Len is the total tuple count (in memory and spilled).
func (t *Table) Len() int { return t.total }

// Digest is an order-sensitive fingerprint of every tuple appended so
// far; durable runs checkpoint it at pipeline breakers.
func (t *Table) Digest() uint64 { return t.dig }

// Append adds one tuple, spilling the in-memory partition when full.
func (t *Table) Append(tp relation.Tuple) error {
	t.tail = append(t.tail, tp)
	t.total++
	t.dig = digestMix(t.dig, tp.Key())
	if len(t.tail) < t.cap {
		return nil
	}
	dir, err := tempDir(&t.dir)
	if err != nil {
		return err
	}
	path, err := writeRun(dir, len(t.parts), t.schema, t.tail)
	if err != nil {
		return err
	}
	t.parts = append(t.parts, path)
	t.tail = nil
	return nil
}

// Row returns tuple i. Access is optimized for sequential scans: the
// partition holding i stays cached until a different one is touched.
func (t *Table) Row(i int) (relation.Tuple, error) {
	part := i / t.cap
	if part >= len(t.parts) {
		return t.tail[i-len(t.parts)*t.cap], nil
	}
	if t.loaded != part {
		r, err := openRun(t.parts[part], t.schema)
		if err != nil {
			return relation.Tuple{}, err
		}
		defer r.close()
		cache := make([]relation.Tuple, 0, t.cap)
		for {
			tp, ok, err := r.next()
			if err != nil {
				return relation.Tuple{}, err
			}
			if !ok {
				break
			}
			cache = append(cache, tp)
		}
		t.loaded, t.cache = part, cache
	}
	return t.cache[i-part*t.cap], nil
}

// Close removes the spill files.
func (t *Table) Close() {
	if t.dir != "" {
		os.RemoveAll(t.dir)
		t.dir = ""
	}
	t.parts, t.tail, t.cache, t.loaded = nil, nil, nil, -1
}

// --- Sorter: external stable merge sort ---

// mergeFanIn caps how many run files one merge pass holds open at
// once; more runs than this compact level by level first, keeping the
// open-file count bounded regardless of input size and cap.
const mergeFanIn = 64

// Sorter accumulates tuples and emits them sorted by a caller-supplied
// less function, holding at most cap tuples in memory: full runs are
// stable-sorted and spilled, then merged k-way with ties broken by run
// order — so the output is bit-identical to sort.SliceStable over the
// whole input.
type Sorter struct {
	schema *relation.Schema
	cap    int
	less   func(a, b relation.Tuple) bool
	dir    string
	runs   []string
	runSeq int
	mem    []relation.Tuple
	total  int
	dig    uint64 // running add-order fingerprint
}

// NewSorter builds an external sorter spilling past cap tuples
// (cap must be > 0).
func NewSorter(schema *relation.Schema, cap int, less func(a, b relation.Tuple) bool) (*Sorter, error) {
	if cap <= 0 {
		return nil, fmt.Errorf("spill: sorter cap must be positive, got %d", cap)
	}
	return &Sorter{schema: schema, cap: cap, less: less}, nil
}

// Len is the total tuple count added so far.
func (s *Sorter) Len() int { return s.total }

// Digest is an order-sensitive fingerprint of every tuple added so
// far; durable runs checkpoint it at pipeline breakers.
func (s *Sorter) Digest() uint64 { return s.dig }

// Add accepts one tuple in input order.
func (s *Sorter) Add(t relation.Tuple) error {
	s.mem = append(s.mem, t)
	s.total++
	s.dig = digestMix(s.dig, t.Key())
	if len(s.mem) < s.cap {
		return nil
	}
	return s.spillRun()
}

func (s *Sorter) spillRun() error {
	sort.SliceStable(s.mem, func(i, j int) bool { return s.less(s.mem[i], s.mem[j]) })
	dir, err := tempDir(&s.dir)
	if err != nil {
		return err
	}
	s.runSeq++
	path, err := writeRun(dir, s.runSeq, s.schema, s.mem)
	if err != nil {
		return err
	}
	s.runs = append(s.runs, path)
	s.mem = nil
	return nil
}

// openMerge builds a merge iterator over the given run files.
func (s *Sorter) openMerge(paths []string, tail []relation.Tuple) (*Iter, error) {
	it := &Iter{less: s.less}
	for _, path := range paths {
		r, err := openRun(path, s.schema)
		if err != nil {
			it.Close()
			return nil, err
		}
		it.runs = append(it.runs, r)
	}
	it.tail = tail
	if err := it.init(); err != nil {
		it.Close()
		return nil, err
	}
	return it, nil
}

// compact merges runs level by level until at most mergeFanIn remain,
// so the final merge never holds more than mergeFanIn files open.
// Adjacent runs hold adjacent input segments, and merges tie-break by
// run order, so stability is preserved across levels.
func (s *Sorter) compact() error {
	for len(s.runs) > mergeFanIn {
		var next []string
		for start := 0; start < len(s.runs); start += mergeFanIn {
			group := s.runs[start:min(start+mergeFanIn, len(s.runs))]
			if len(group) == 1 {
				next = append(next, group[0])
				continue
			}
			it, err := s.openMerge(group, nil)
			if err != nil {
				return err
			}
			s.runSeq++
			path := runPath(s.dir, s.runSeq)
			f, err := os.Create(path)
			if err != nil {
				it.Close()
				return err
			}
			w := bufio.NewWriter(f)
			fw, err := newFrameWriter(w, s.schema)
			if err != nil {
				it.Close()
				f.Close()
				return err
			}
			for {
				t, ok, err := it.Next()
				if err == nil && ok {
					err = fw.add(t)
				}
				if err != nil {
					it.Close()
					f.Close()
					return err
				}
				if !ok {
					break
				}
			}
			it.Close()
			if err := fw.finish(); err != nil {
				f.Close()
				return err
			}
			if err := w.Flush(); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			for _, old := range group {
				os.Remove(old)
			}
			next = append(next, path)
		}
		s.runs = next
	}
	return nil
}

// Sort finishes input and returns the merged sorted iterator. The
// sorter must not be Added to afterwards; Close releases the files.
func (s *Sorter) Sort() (*Iter, error) {
	sort.SliceStable(s.mem, func(i, j int) bool { return s.less(s.mem[i], s.mem[j]) })
	if err := s.compact(); err != nil {
		return nil, err
	}
	// The in-memory tail holds the latest input, so it merges as the
	// last run (ties resolve to earlier runs — stability).
	return s.openMerge(s.runs, s.mem)
}

// Close removes the spill files.
func (s *Sorter) Close() {
	if s.dir != "" {
		os.RemoveAll(s.dir)
		s.dir = ""
	}
	s.mem, s.runs = nil, nil
}

// Iter is the sorted output stream of a Sorter: a k-way heap merge
// over the spilled runs plus the in-memory tail.
type Iter struct {
	less  func(a, b relation.Tuple) bool
	runs  []*runReader
	tail  []relation.Tuple
	tailI int
	heap  []heapItem
}

type heapItem struct {
	t   relation.Tuple
	run int // run index; len(runs) = the in-memory tail
}

func (it *Iter) init() error {
	for i := range it.runs {
		if err := it.push(i); err != nil {
			return err
		}
	}
	if it.tailI < len(it.tail) {
		it.heapPush(heapItem{t: it.tail[it.tailI], run: len(it.runs)})
		it.tailI++
	}
	return nil
}

// push reads run i's next tuple onto the heap.
func (it *Iter) push(i int) error {
	t, ok, err := it.runs[i].next()
	if err != nil {
		return err
	}
	if ok {
		it.heapPush(heapItem{t: t, run: i})
	}
	return nil
}

// before orders heap items: by less, ties by run index (stability).
func (it *Iter) before(a, b heapItem) bool {
	if it.less(a.t, b.t) {
		return true
	}
	if it.less(b.t, a.t) {
		return false
	}
	return a.run < b.run
}

func (it *Iter) heapPush(h heapItem) {
	it.heap = append(it.heap, h)
	i := len(it.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !it.before(it.heap[i], it.heap[parent]) {
			break
		}
		it.heap[i], it.heap[parent] = it.heap[parent], it.heap[i]
		i = parent
	}
}

func (it *Iter) heapPop() heapItem {
	top := it.heap[0]
	last := len(it.heap) - 1
	it.heap[0] = it.heap[last]
	it.heap = it.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(it.heap) && it.before(it.heap[l], it.heap[smallest]) {
			smallest = l
		}
		if r < len(it.heap) && it.before(it.heap[r], it.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		it.heap[i], it.heap[smallest] = it.heap[smallest], it.heap[i]
		i = smallest
	}
}

// Next returns the next tuple in sorted order, or ok=false at the end.
func (it *Iter) Next() (relation.Tuple, bool, error) {
	if len(it.heap) == 0 {
		return relation.Tuple{}, false, nil
	}
	top := it.heapPop()
	if top.run < len(it.runs) {
		if err := it.push(top.run); err != nil {
			return relation.Tuple{}, false, err
		}
	} else if it.tailI < len(it.tail) {
		it.heapPush(heapItem{t: it.tail[it.tailI], run: len(it.runs)})
		it.tailI++
	}
	return top.t, true, nil
}

// Close closes the run readers (files are removed by Sorter.Close).
func (it *Iter) Close() {
	for _, r := range it.runs {
		if r != nil {
			r.close()
		}
	}
	it.runs = nil
}
