package join

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"qurk/internal/combine"
	"qurk/internal/crowd"
	"qurk/internal/relation"
	"qurk/internal/task"
)

var testSchema = relation.MustSchema(
	relation.Column{Name: "id", Kind: relation.KindText},
	relation.Column{Name: "img", Kind: relation.KindURL},
)

// makeTables builds two n-row tables whose rows join on equal ids.
func makeTables(n int) (*relation.Relation, *relation.Relation) {
	left := relation.New("celeb", testSchema.Qualify("c"))
	right := relation.New("photos", testSchema.Qualify("p"))
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("celeb%02d", i)
		_ = left.AppendValues(relation.Text(id), relation.URL("http://imdb/"+id))
		_ = right.AppendValues(relation.Text(id), relation.URL("http://oscars/"+id))
	}
	return left, right
}

// testOracle joins tuples with equal ids; features derive from the id's
// numeric suffix.
type testOracle struct {
	difficulty    float64
	hairConfusion float64
}

func idNum(t relation.Tuple) int {
	id, _ := t.Get("id")
	n, _ := strconv.Atoi(strings.TrimPrefix(id.Text(), "celeb"))
	return n
}

func (o *testOracle) JoinMatch(l, r relation.Tuple) (bool, float64) {
	lid, _ := l.Get("id")
	rid, _ := r.Get("id")
	return lid.Text() == rid.Text(), o.difficulty
}
func (o *testOracle) FilterTruth(string, relation.Tuple) (bool, float64) { return true, 0 }
func (o *testOracle) FieldValue(taskName, field string, t relation.Tuple) (string, float64, []string) {
	n := idNum(t)
	switch field {
	case "gender":
		opts := []string{"Male", "Female", "UNKNOWN"}
		return opts[n%2], 0.02, opts
	case "hair":
		opts := []string{"black", "brown", "blond", "white", "UNKNOWN"}
		return opts[n%4], o.hairConfusion, opts
	default:
		return "x", 0, []string{"x", "y"}
	}
}
func (o *testOracle) Score(string, relation.Tuple) (float64, float64) { return 0, 0 }
func (o *testOracle) ScoreRange(string) (float64, float64)            { return 0, 1 }

func equiJoinTask() *task.EquiJoin {
	return &task.EquiJoin{
		Name: "samePerson", SingularName: "celebrity", PluralName: "celebrities",
		LeftPreview:  task.MustPrompt("<img src='%s' class=smImg>", "img"),
		LeftNormal:   task.MustPrompt("<img src='%s' class=lgImg>", "img"),
		RightPreview: task.MustPrompt("<img src='%s' class=smImg>", "img"),
		RightNormal:  task.MustPrompt("<img src='%s' class=lgImg>", "img"),
		Combiner:     "MajorityVote",
	}
}

func genderFeature() Feature {
	return Feature{
		Task: &task.Generative{
			Name:   "gender",
			Prompt: task.MustPrompt("<img src='%s'> What is this person's gender?", "img"),
			Fields: []task.Field{{Name: "gender", Response: task.Radio("Gender", "Male", "Female", "UNKNOWN"), Combiner: "MajorityVote"}},
		},
		Field: "gender",
	}
}

func hairFeature() Feature {
	return Feature{
		Task: &task.Generative{
			Name:   "hairColor",
			Prompt: task.MustPrompt("<img src='%s'> What is this person's hair color?", "img"),
			Fields: []task.Field{{Name: "hair", Response: task.Radio("Hair", "black", "brown", "blond", "white", "UNKNOWN"), Combiner: "MajorityVote"}},
		},
		Field: "hair",
	}
}

func market(seed int64, o crowd.Oracle) *crowd.SimMarket {
	return crowd.NewSimMarket(crowd.DefaultConfig(seed), o)
}

func TestCrossPairs(t *testing.T) {
	l, r := makeTables(5)
	pairs := CrossPairs(l, r)
	if len(pairs) != 25 {
		t.Fatalf("cross pairs = %d, want 25", len(pairs))
	}
	// Keys are unique and stable.
	seen := map[string]bool{}
	for _, p := range pairs {
		if seen[p.Key()] {
			t.Fatalf("duplicate key %s", p.Key())
		}
		seen[p.Key()] = true
	}
}

func TestHITCountsPerAlgorithm(t *testing.T) {
	l, r := makeTables(10) // 100 pairs
	o := &testOracle{difficulty: 0.05}
	cases := []struct {
		name string
		opts Options
		want int
	}{
		{"simple", Options{Algorithm: Simple}, 100},
		{"naive5", Options{Algorithm: Naive, BatchSize: 5}, 20},
		{"naive10", Options{Algorithm: Naive, BatchSize: 10}, 10},
		{"smart2x2", Options{Algorithm: Smart, GridRows: 2, GridCols: 2}, 25},
		{"smart3x3", Options{Algorithm: Smart, GridRows: 3, GridCols: 3}, 16}, // ceil(10/3)² = 4²
		{"smart5x5", Options{Algorithm: Smart, GridRows: 5, GridCols: 5}, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := RunCross(l, r, equiJoinTask(), c.opts, market(1, o))
			if err != nil {
				t.Fatal(err)
			}
			if res.HITCount != c.want {
				t.Errorf("HITs = %d, want %d (paper §3.1 arithmetic)", res.HITCount, c.want)
			}
			if res.Candidates != 100 {
				t.Errorf("candidates = %d, want 100", res.Candidates)
			}
		})
	}
}

func TestJoinRecoversMatches(t *testing.T) {
	l, r := makeTables(12)
	o := &testOracle{difficulty: 0.05}
	for _, alg := range []Options{
		{Algorithm: Simple, Assignments: 10, GroupID: "t1"},
		{Algorithm: Naive, BatchSize: 5, Assignments: 10, GroupID: "t2"},
		{Algorithm: Smart, GridRows: 3, GridCols: 3, Assignments: 10, GroupID: "t3"},
	} {
		res, err := RunCross(l, r, equiJoinTask(), alg, market(7, o))
		if err != nil {
			t.Fatal(err)
		}
		tp, fp := 0, 0
		for _, m := range res.Matches {
			if match, _ := o.JoinMatch(m.Pair.Left, m.Pair.Right); match {
				tp++
			} else {
				fp++
			}
		}
		if tp < 11 {
			t.Errorf("%v: true positives = %d/12", alg.Algorithm, tp)
		}
		if fp > 2 {
			t.Errorf("%v: false positives = %d", alg.Algorithm, fp)
		}
		if res.Joined.Len() != len(res.Matches) {
			t.Errorf("%v: joined relation rows %d != matches %d", alg.Algorithm, res.Joined.Len(), len(res.Matches))
		}
	}
}

func TestJoinWithQualityAdjust(t *testing.T) {
	l, r := makeTables(10)
	o := &testOracle{difficulty: 0.05}
	qa := combine.NewQualityAdjust(combine.DefaultQAConfig())
	res, err := RunCross(l, r, equiJoinTask(),
		Options{Algorithm: Naive, BatchSize: 10, Assignments: 10, Combiner: qa}, market(11, o))
	if err != nil {
		t.Fatal(err)
	}
	tp := 0
	for _, m := range res.Matches {
		if match, _ := o.JoinMatch(m.Pair.Left, m.Pair.Right); match {
			tp++
		}
	}
	if tp < 9 {
		t.Errorf("QA true positives = %d/10", tp)
	}
}

func TestJoinEmptyCandidates(t *testing.T) {
	res, err := Run(nil, equiJoinTask(), Options{}, market(1, &testOracle{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.HITCount != 0 || len(res.Matches) != 0 {
		t.Errorf("empty join: %+v", res)
	}
}

func TestJoinVotesExposed(t *testing.T) {
	l, r := makeTables(4)
	o := &testOracle{difficulty: 0.05}
	res, err := RunCross(l, r, equiJoinTask(), Options{Algorithm: Simple, Assignments: 5}, market(3, o))
	if err != nil {
		t.Fatal(err)
	}
	// 16 pairs × 5 assignments = 80 votes.
	if len(res.Votes) != 80 {
		t.Errorf("votes = %d, want 80", len(res.Votes))
	}
	// Votes can be re-combined externally (two-trial merges).
	dec, err := combine.MajorityVote{}.Combine(res.Votes)
	if err != nil || len(dec) != 16 {
		t.Errorf("recombine: %d decisions, %v", len(dec), err)
	}
}

func TestGridVoteExpansion(t *testing.T) {
	// Grid answers must expand into per-cell votes: a 2×2 grid with 5
	// assignments yields 4 cells × 5 = 20 votes.
	l, r := makeTables(2)
	o := &testOracle{difficulty: 0.05}
	res, err := RunCross(l, r, equiJoinTask(),
		Options{Algorithm: Smart, GridRows: 2, GridCols: 2, Assignments: 5}, market(5, o))
	if err != nil {
		t.Fatal(err)
	}
	if res.HITCount != 1 {
		t.Fatalf("HITs = %d, want 1", res.HITCount)
	}
	if len(res.Votes) != 20 {
		t.Errorf("votes = %d, want 20", len(res.Votes))
	}
}

func TestExtractAndValues(t *testing.T) {
	l, _ := makeTables(10)
	o := &testOracle{hairConfusion: 0.02}
	ext, err := Extract(l, []Feature{genderFeature(), hairFeature()},
		ExtractOptions{Combined: true, BatchSize: 4, Assignments: 5}, market(13, o))
	if err != nil {
		t.Fatal(err)
	}
	// ceil(10/4) = 3 combined HITs.
	if ext.HITCount != 3 {
		t.Errorf("extraction HITs = %d, want 3", ext.HITCount)
	}
	// With near-zero confusion, every combined value should be right.
	correct := 0
	for i := 0; i < l.Len(); i++ {
		want, _, _ := o.FieldValue("gender", "gender", l.Row(i))
		if got, ok := ext.Value(l.Row(i), "gender"); ok && got == want {
			correct++
		}
	}
	if correct < 9 {
		t.Errorf("gender extraction correct = %d/10", correct)
	}
	// κ should be high for a crisp feature.
	k, err := ext.Kappa("gender")
	if err != nil {
		t.Fatal(err)
	}
	if k < 0.7 {
		t.Errorf("gender κ = %.2f, want high", k)
	}
}

func TestExtractSeparateVsCombinedHITCounts(t *testing.T) {
	l, _ := makeTables(20)
	o := &testOracle{}
	sep, err := Extract(l, []Feature{genderFeature(), hairFeature()},
		ExtractOptions{Combined: false, BatchSize: 5, Assignments: 5}, market(17, o))
	if err != nil {
		t.Fatal(err)
	}
	// Separate: 2 features × ceil(20/5) = 8 HITs.
	if sep.HITCount != 8 {
		t.Errorf("separate HITs = %d, want 8", sep.HITCount)
	}
	comb, err := Extract(l, []Feature{genderFeature(), hairFeature()},
		ExtractOptions{Combined: true, BatchSize: 5, Assignments: 5}, market(17, o))
	if err != nil {
		t.Fatal(err)
	}
	// Combined: ceil(20/5) = 4 HITs — combining reduces HITs (§2.6).
	if comb.HITCount != 4 {
		t.Errorf("combined HITs = %d, want 4", comb.HITCount)
	}
}

func TestPairPassesUnknownWildcard(t *testing.T) {
	l, r := makeTables(2)
	le := &Extraction{Values: map[uint64]map[string]string{
		l.Row(0).Key(): {"gender": "Male"},
		l.Row(1).Key(): {"gender": "UNKNOWN"},
	}}
	re := &Extraction{Values: map[uint64]map[string]string{
		r.Row(0).Key(): {"gender": "Female"},
		r.Row(1).Key(): {"gender": "Female"},
	}}
	if PairPasses(le, re, l.Row(0), r.Row(0), []string{"gender"}) {
		t.Error("Male/Female pair passed")
	}
	// UNKNOWN matches everything (paper §2.4).
	if !PairPasses(le, re, l.Row(1), r.Row(1), []string{"gender"}) {
		t.Error("UNKNOWN pair pruned")
	}
	// Unextracted features never prune.
	if !PairPasses(le, re, l.Row(0), r.Row(0), []string{"unextracted"}) {
		t.Error("missing feature pruned")
	}
}

func TestFilteredPairsPruning(t *testing.T) {
	l, r := makeTables(10)
	o := &testOracle{hairConfusion: 0.02}
	le, err := Extract(l, []Feature{genderFeature()}, ExtractOptions{Combined: true, Assignments: 5, GroupID: "el"}, market(19, o))
	if err != nil {
		t.Fatal(err)
	}
	re, err := Extract(r, []Feature{genderFeature()}, ExtractOptions{Combined: true, Assignments: 5, GroupID: "er"}, market(23, o))
	if err != nil {
		t.Fatal(err)
	}
	pairs := FilteredPairs(l, r, le, re, []string{"gender"})
	// Gender splits 50/50: ~half the 100 pairs pruned.
	if len(pairs) < 40 || len(pairs) > 70 {
		t.Errorf("filtered pairs = %d, want ≈50", len(pairs))
	}
	// All true matches must survive (gender is reliable here).
	surviving := map[string]bool{}
	for _, p := range pairs {
		surviving[p.Key()] = true
	}
	lost := 0
	for _, p := range CrossPairs(l, r) {
		if match, _ := o.JoinMatch(p.Left, p.Right); match && !surviving[p.Key()] {
			lost++
		}
	}
	if lost > 1 {
		t.Errorf("filter lost %d true matches", lost)
	}
	sel := EmpiricalSelectivity(l, r, le, re, []string{"gender"})
	if sel < 0.4 || sel > 0.7 {
		t.Errorf("selectivity = %.2f, want ≈0.5", sel)
	}
}

func TestChooseFeaturesDropsAmbiguousHair(t *testing.T) {
	l, r := makeTables(16)
	// Hair is very confusable — κ should drop below threshold and the
	// selector should discard it, as the paper concludes for hair
	// color (§3.3.4).
	o := &testOracle{hairConfusion: 0.75}
	features := []Feature{genderFeature(), hairFeature()}
	le, err := Extract(l, features, ExtractOptions{Combined: true, Assignments: 5, GroupID: "l"}, market(29, o))
	if err != nil {
		t.Fatal(err)
	}
	re, err := Extract(r, features, ExtractOptions{Combined: true, Assignments: 5, GroupID: "r"}, market(31, o))
	if err != nil {
		t.Fatal(err)
	}
	// Reference matches: the true pairs.
	var ref []Pair
	for _, p := range CrossPairs(l, r) {
		if match, _ := o.JoinMatch(p.Left, p.Right); match {
			ref = append(ref, p)
		}
	}
	kept, verdicts, err := ChooseFeatures(l, r, le, re, features, ref, SelectionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FeatureVerdict{}
	for _, v := range verdicts {
		byName[v.Feature] = v
	}
	if !byName["gender"].Kept {
		t.Errorf("gender dropped: %+v", byName["gender"])
	}
	if byName["hair"].Kept {
		t.Errorf("ambiguous hair kept: %+v", byName["hair"])
	}
	if len(kept) != 1 || kept[0].Field != "gender" {
		t.Errorf("kept = %v", kept)
	}
}

func TestRunFilteredEndToEnd(t *testing.T) {
	l, r := makeTables(12)
	o := &testOracle{hairConfusion: 0.02}
	res, err := RunFiltered(l, r, equiJoinTask(),
		[]Feature{genderFeature()},
		ExtractOptions{Combined: true, BatchSize: 4, Assignments: 5},
		Options{Algorithm: Naive, BatchSize: 5, Assignments: 10, GroupID: "fj"},
		market(37, o))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtractionHITs != 6 { // 2 tables × ceil(12/4)
		t.Errorf("extraction HITs = %d, want 6", res.ExtractionHITs)
	}
	if res.SavedComparisons < 50 {
		t.Errorf("saved comparisons = %d, want ≥50 of 144", res.SavedComparisons)
	}
	if res.TotalHITs() != res.ExtractionHITs+res.Result.HITCount {
		t.Error("TotalHITs arithmetic wrong")
	}
	tp := 0
	for _, m := range res.Matches {
		if match, _ := o.JoinMatch(m.Pair.Left, m.Pair.Right); match {
			tp++
		}
	}
	if tp < 11 {
		t.Errorf("filtered join TP = %d/12", tp)
	}
	// Filtering must beat the unfiltered cost.
	unfiltered, err := RunCross(l, r, equiJoinTask(), Options{Algorithm: Naive, BatchSize: 5, Assignments: 10}, market(41, o))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalHITs() >= unfiltered.HITCount {
		t.Errorf("filtered %d HITs ≥ unfiltered %d", res.TotalHITs(), unfiltered.HITCount)
	}
}

func TestSmartHITsSparseCandidates(t *testing.T) {
	// With candidates restricted to matching ids, the grid layout
	// should skip empty blocks.
	l, r := makeTables(9)
	var pairs []Pair
	for i := 0; i < 9; i++ {
		pairs = append(pairs, Pair{LeftIndex: i, RightIndex: i, Left: l.Row(i), Right: r.Row(i)})
	}
	o := &testOracle{difficulty: 0.05}
	res, err := Run(pairs, equiJoinTask(), Options{Algorithm: Smart, GridRows: 3, GridCols: 3, Assignments: 5}, market(43, o))
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal candidates: only the 3 diagonal blocks have candidates.
	if res.HITCount != 3 {
		t.Errorf("sparse grid HITs = %d, want 3", res.HITCount)
	}
}

func TestSamplePairs(t *testing.T) {
	l, r := makeTables(10)
	rng := rand.New(rand.NewSource(47))
	s := SamplePairs(l, r, 0.25, rng)
	if len(s) != 25 {
		t.Errorf("sample = %d, want 25", len(s))
	}
	full := SamplePairs(l, r, 1.0, rng)
	if len(full) != 100 {
		t.Errorf("full sample = %d", len(full))
	}
	tiny := SamplePairs(l, r, 1e-9, rng)
	if len(tiny) != 1 {
		t.Errorf("tiny sample = %d, want 1", len(tiny))
	}
}

func TestFeatureValidation(t *testing.T) {
	// Non-categorical features are rejected (κ requires categories).
	f := Feature{
		Task: &task.Generative{
			Name:   "freetext",
			Prompt: task.MustPrompt("describe"),
			Fields: []task.Field{{Name: "desc", Response: task.TextInput("Description")}},
		},
		Field: "desc",
	}
	if err := f.Validate(); err == nil {
		t.Error("free-text feature accepted")
	}
	if _, err := Extract(relation.New("x", testSchema), nil, ExtractOptions{}, market(1, &testOracle{})); err == nil {
		t.Error("empty feature list accepted")
	}
	bad := Feature{Task: genderFeature().Task, Field: "missing"}
	if err := bad.Validate(); err == nil {
		t.Error("missing field accepted")
	}
}
