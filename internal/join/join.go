// Package join implements Qurk's crowd-powered join operator (paper §3):
// a block nested loop join whose predicate evaluations are HITs, with the
// paper's three interfaces — SimpleJoin, NaiveBatch, and SmartBatch — and
// the feature-filtering optimization that prunes the cross product with a
// linear pass of categorical feature extractions (§3.2).
package join

import (
	"fmt"
	"strconv"

	"qurk/internal/combine"
	"qurk/internal/crowd"
	"qurk/internal/hit"
	"qurk/internal/relation"
	"qurk/internal/task"
)

// Algorithm selects the join HIT interface.
type Algorithm uint8

const (
	// Simple posts one candidate pair per HIT (paper §3.1.1): |R||S|
	// HITs for a full cross product.
	Simple Algorithm = iota
	// Naive batches b pairs vertically per HIT (§3.1.2): |R||S|/b HITs.
	Naive
	// Smart shows an r×s grid per HIT and asks the worker to click
	// matching pairs (§3.1.3): |R||S|/(r·s) HITs.
	Smart
)

// String names the algorithm as the paper does.
func (a Algorithm) String() string {
	switch a {
	case Simple:
		return "Simple"
	case Naive:
		return "NaiveBatch"
	case Smart:
		return "SmartBatch"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// Options configures one join run.
type Options struct {
	// Algorithm is the interface (default Simple).
	Algorithm Algorithm
	// BatchSize is pairs-per-HIT for Naive (default 5).
	BatchSize int
	// GridRows × GridCols is the Smart grid (default 3×3).
	GridRows, GridCols int
	// Assignments is workers per HIT (default 5).
	Assignments int
	// Combiner merges votes (default MajorityVote). For QualityAdjust
	// pass a configured *combine.QualityAdjust.
	Combiner combine.Combiner
	// GroupID labels the HIT group (default "join").
	GroupID string
	// Cache, if non-nil, memoizes pair questions across runs.
	Cache *hit.Cache
}

func (o *Options) fillDefaults() {
	if o.BatchSize == 0 {
		o.BatchSize = 5
	}
	if o.GridRows == 0 {
		o.GridRows = 3
	}
	if o.GridCols == 0 {
		o.GridCols = 3
	}
	if o.Assignments == 0 {
		o.Assignments = 5
	}
	if o.Combiner == nil {
		o.Combiner = combine.MajorityVote{}
	}
	if o.GroupID == "" {
		o.GroupID = "join"
	}
}

// Pair is one candidate (left row, right row) pair.
type Pair struct {
	LeftIndex, RightIndex int
	Left, Right           relation.Tuple
}

// Key identifies the pair for vote bookkeeping, stable across interfaces
// so MajorityVote and QualityAdjust see the same question IDs. The
// rendering is byte-identical to fmt.Sprintf("pair:%x|%x", ...) but in
// one allocation — every candidate pair mints this at least once.
func (p Pair) Key() string {
	var buf [40]byte
	b := append(buf[:0], "pair:"...)
	b = strconv.AppendUint(b, p.Left.Key(), 16)
	b = append(b, '|')
	b = strconv.AppendUint(b, p.Right.Key(), 16)
	return string(b)
}

// PairSeq streams candidate pairs to a consumer: it calls yield for each
// pair in a deterministic order and stops early if yield returns false.
// Sequences let the join batch HITs straight off pair generation instead
// of materializing O(|R|·|S|) slices first.
type PairSeq func(yield func(Pair) bool)

// SliceSeq adapts an explicit pair list to a PairSeq.
func SliceSeq(pairs []Pair) PairSeq {
	return func(yield func(Pair) bool) {
		for _, p := range pairs {
			if !yield(p) {
				return
			}
		}
	}
}

// CollectPairs materializes a sequence (tests and small inputs).
func CollectPairs(seq PairSeq) []Pair {
	var out []Pair
	seq(func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// PairIter is the pull-side dual of PairSeq: a resumable candidate-pair
// iterator for consumers that interleave pair generation with other
// work (the streaming executor batches pairs into HITs a chunk at a
// time, posting each chunk before generating the next). Next returns
// false when the sequence is exhausted.
type PairIter interface {
	Next() (Pair, bool)
}

// crossIter walks left×right in row-major order, optionally pruned by
// feature extractions (PairPasses), without materializing anything.
type crossIter struct {
	left, right *relation.Relation
	le, re      *Extraction
	features    []string
	i, j        int
}

// NewPairIter returns a pull iterator over the candidate pairs of
// left ⋈ right in row-major order. With non-nil extractions and a
// feature list it yields only feature-compatible pairs (the §3.2
// pruned candidate set, same order as FilteredSeq); with nil
// extractions it yields the full cross product (same order as
// CrossSeq).
func NewPairIter(left, right *relation.Relation, le, re *Extraction, features []string) PairIter {
	return &crossIter{left: left, right: right, le: le, re: re, features: features}
}

// Next implements PairIter.
func (it *crossIter) Next() (Pair, bool) {
	for ; it.i < it.left.Len(); it.i++ {
		lt := it.left.Row(it.i)
		for ; it.j < it.right.Len(); it.j++ {
			rt := it.right.Row(it.j)
			if it.le != nil && it.re != nil && !PairPasses(it.le, it.re, lt, rt, it.features) {
				continue
			}
			p := Pair{LeftIndex: it.i, RightIndex: it.j, Left: lt, Right: rt}
			it.j++
			return p, true
		}
		it.j = 0
	}
	return Pair{}, false
}

// CrossSeq streams the full cross product in row-major order — the
// block nested loop the paper describes (§3.1) without the O(|R|·|S|)
// slice.
func CrossSeq(left, right *relation.Relation) PairSeq {
	return func(yield func(Pair) bool) {
		for i := 0; i < left.Len(); i++ {
			for j := 0; j < right.Len(); j++ {
				if !yield(Pair{LeftIndex: i, RightIndex: j, Left: left.Row(i), Right: right.Row(j)}) {
					return
				}
			}
		}
	}
}

// Result is the outcome of a crowd join.
type Result struct {
	// Matches are the pairs the combiner accepted.
	Matches []Match
	// Joined is the relational join result (left ⋈ right schemas).
	Joined *relation.Relation
	// HITCount is the number of HITs posted (the paper's cost unit).
	HITCount int
	// AssignmentCount is total assignments completed.
	AssignmentCount int
	// Candidates is the number of pairs evaluated (≠ |R||S| when
	// feature filtering pruned the cross product).
	Candidates int
	// Votes holds the raw per-pair votes so callers can re-combine
	// (e.g., merge two trials, or compare MV vs QA on one corpus).
	Votes []combine.Vote
	// Assignments carries completion metadata for latency analysis.
	Assignments []hit.Assignment
	// MakespanHours is the group completion time.
	MakespanHours float64
	// Incomplete lists refused HITs (batch too large).
	Incomplete []string
}

// Match is an accepted pair with the combiner's confidence.
type Match struct {
	Pair       Pair
	Confidence float64
	Votes      int
}

// CrossPairs enumerates the full cross product of candidate pairs.
// Prefer CrossSeq for large inputs; this materializes the slice.
func CrossPairs(left, right *relation.Relation) []Pair {
	pairs := make([]Pair, 0, left.Len()*right.Len())
	CrossSeq(left, right)(func(p Pair) bool {
		pairs = append(pairs, p)
		return true
	})
	return pairs
}

// Run executes the crowd join over an explicit candidate pair list.
// Most callers use RunCross (full cross product), RunSeq (streamed
// candidates), or feature filtering's RunFiltered.
func Run(candidates []Pair, jt *task.EquiJoin, opts Options, market crowd.Marketplace) (*Result, error) {
	return RunSeq(SliceSeq(candidates), jt, opts, market)
}

// RunSeq executes the crowd join over a streamed candidate sequence,
// batching questions into HITs as pairs arrive so the candidate set is
// never materialized as a separate slice before HIT generation.
func RunSeq(candidates PairSeq, jt *task.EquiJoin, opts Options, market crowd.Marketplace) (*Result, error) {
	opts.fillDefaults()
	if err := jt.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}

	// byKey/order dedup pairs for the decision mapping, filled while
	// streaming candidates into HIT batches. Key strings dominate this
	// bookkeeping's footprint and are needed for dedup regardless;
	// retaining the Pair alongside avoids re-generating the whole
	// sequence (a second full PairPasses sweep for filtered joins)
	// after the marketplace round trip.
	byKey := map[string]Pair{}
	var order []string
	note := func(p Pair) {
		res.Candidates++
		k := p.Key()
		if _, dup := byKey[k]; !dup {
			order = append(order, k)
		}
		byKey[k] = p
	}

	// Build HITs per algorithm, streaming off the sequence.
	b := hit.NewBuilder(opts.GroupID, opts.Assignments, 1)
	var hits []*hit.HIT
	var err error
	switch opts.Algorithm {
	case Simple, Naive:
		batch := 1
		if opts.Algorithm == Naive && opts.BatchSize > 1 {
			batch = opts.BatchSize
		}
		chunk := make([]hit.Question, 0, batch)
		flush := func() error {
			if len(chunk) == 0 {
				return nil
			}
			hs, merr := b.Merge(chunk, batch)
			if merr != nil {
				return merr
			}
			hits = append(hits, hs...)
			chunk = chunk[:0]
			return nil
		}
		candidates(func(p Pair) bool {
			note(p)
			chunk = append(chunk, hit.Question{
				ID:   p.Key(),
				Kind: hit.JoinPairQ,
				Task: jt.Name,
				Left: p.Left, Right: p.Right,
			})
			if len(chunk) == batch {
				err = flush()
			}
			return err == nil
		})
		if err == nil {
			err = flush()
		}
	case Smart:
		hits, err = SmartGridHITs(b, candidates, note, jt.Name, opts.GridRows, opts.GridCols)
	default:
		return nil, fmt.Errorf("join: unknown algorithm %v", opts.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	if res.Candidates == 0 {
		res.Joined = relation.New("join", nil)
		return res, nil
	}
	res.HITCount = len(hits)

	// Post to the marketplace.
	run, err := market.Run(&hit.Group{ID: opts.GroupID, HITs: hits})
	if err != nil {
		return nil, err
	}
	res.AssignmentCount = run.TotalAssignments
	res.MakespanHours = run.MakespanHours
	res.Incomplete = run.Incomplete
	res.Assignments = run.Assignments

	// Collect votes per pair.
	res.Votes = CollectVotes(hits, run.Assignments)

	// Combine and keep accepted pairs in first-appearance order.
	decisions, err := opts.Combiner.Combine(res.Votes)
	if err != nil {
		return nil, err
	}
	var joined *relation.Relation
	for _, key := range order {
		d, ok := decisions[key]
		if !ok || d.Value != "yes" {
			continue
		}
		p := byKey[key]
		res.Matches = append(res.Matches, Match{Pair: p, Confidence: d.Confidence, Votes: d.Votes})
		if joined == nil {
			schema, cerr := p.Left.Schema().Concat(p.Right.Schema())
			if cerr != nil {
				return nil, fmt.Errorf("join: %w", cerr)
			}
			joined = relation.New("join", schema)
		}
		if err := joined.Append(p.Left.Concat(p.Right, joined.Schema())); err != nil {
			return nil, err
		}
	}
	if joined == nil {
		joined = relation.New("join", nil)
	}
	res.Joined = joined
	return res, nil
}

// RunCross joins the full cross product of two relations.
func RunCross(left, right *relation.Relation, jt *task.EquiJoin, opts Options, market crowd.Marketplace) (*Result, error) {
	return RunSeq(CrossSeq(left, right), jt, opts, market)
}

// SmartGridHITs lays candidate pairs out as r×s grids. Candidates are grouped
// into maximal complete bipartite blocks: we collect the distinct left
// and right tuples (in first-appearance order), chunk them r and s at a
// time, and emit a grid HIT per chunk pair that contains at least one
// candidate. With a full cross product every chunk pair qualifies and the
// count matches the paper's |R||S|/(rs); with feature-filtered candidates
// sparse blocks are skipped. note is invoked once per streamed candidate
// for the caller's bookkeeping. Exported so the streaming executor can
// lay out grids itself and post them chunk by chunk.
func SmartGridHITs(b *hit.Builder, candidates PairSeq, note func(Pair), taskName string, r, s int) ([]*hit.HIT, error) {
	if r < 1 || s < 1 {
		return nil, fmt.Errorf("join: smart grid must be ≥1×1, got %d×%d", r, s)
	}
	// Index distinct sides.
	var lefts, rights []relation.Tuple
	lIdx := map[uint64]int{}
	rIdx := map[uint64]int{}
	type cell struct{ l, r int }
	want := map[cell]bool{}
	candidates(func(p Pair) bool {
		note(p)
		lk, rk := p.Left.Key(), p.Right.Key()
		li, ok := lIdx[lk]
		if !ok {
			li = len(lefts)
			lIdx[lk] = li
			lefts = append(lefts, p.Left)
		}
		ri, ok := rIdx[rk]
		if !ok {
			ri = len(rights)
			rIdx[rk] = ri
			rights = append(rights, p.Right)
		}
		want[cell{li, ri}] = true
		return true
	})
	var hits []*hit.HIT
	for l := 0; l < len(lefts); l += r {
		lend := min(l+r, len(lefts))
		for g := 0; g < len(rights); g += s {
			gend := min(g+s, len(rights))
			// Skip blocks containing no candidate pair (sparse
			// candidate sets from feature filtering).
			any := false
			for li := l; li < lend && !any; li++ {
				for ri := g; ri < gend; ri++ {
					if want[cell{li, ri}] {
						any = true
						break
					}
				}
			}
			if !any {
				continue
			}
			q := hit.Question{
				ID:   b.QuestionID(),
				Kind: hit.JoinGridQ,
				Task: taskName,
			}
			q.LeftItems = append(q.LeftItems, lefts[l:lend]...)
			q.RightItems = append(q.RightItems, rights[g:gend]...)
			gh, err := b.Merge([]hit.Question{q}, 1)
			if err != nil {
				return nil, err
			}
			hits = append(hits, gh...)
		}
	}
	return hits, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CollectVotes turns assignments into per-pair yes/no votes. Grid
// answers expand to votes over every cell: selected cells vote yes,
// unselected cells vote no. Exported for the streaming executor, which
// collects chunk by chunk.
func CollectVotes(hits []*hit.HIT, assignments []hit.Assignment) []combine.Vote {
	var votes []combine.Vote
	hit.ForEachAnswer(hits, assignments, func(q *hit.Question, worker string, ans hit.Answer) {
		switch q.Kind {
		case hit.JoinPairQ:
			votes = append(votes, combine.Vote{
				Question: q.ID,
				Worker:   worker,
				Value:    boolToVote(ans.Bool),
			})
		case hit.JoinGridQ:
			selected := make(map[[2]int]bool, len(ans.Pairs))
			for _, p := range ans.Pairs {
				selected[p] = true
			}
			for li, lt := range q.LeftItems {
				for ri, rt := range q.RightItems {
					key := Pair{Left: lt, Right: rt}.Key()
					votes = append(votes, combine.Vote{
						Question: key,
						Worker:   worker,
						Value:    boolToVote(selected[[2]int{li, ri}]),
					})
				}
			}
		}
	})
	return votes
}

func boolToVote(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
