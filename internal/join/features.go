package join

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"

	"qurk/internal/combine"
	"qurk/internal/crowd"
	"qurk/internal/hit"
	"qurk/internal/relation"
	"qurk/internal/stats"
	"qurk/internal/task"
)

// Feature is one POSSIBLY-clause feature filter: a categorical generative
// task (e.g. gender) whose extracted values must match across the two
// sides of a join for a pair to remain a candidate (paper §3.2).
type Feature struct {
	// Task is the categorical extraction task.
	Task *task.Generative
	// Field is the task's output field to compare.
	Field string
}

// Name returns the feature's display name (the field).
func (f Feature) Name() string { return f.Field }

// Validate checks the feature is a categorical extraction the §3.2
// filter (and κ-based ambiguity detection) can use.
func (f Feature) Validate() error {
	if f.Task == nil {
		return fmt.Errorf("join: feature %q has no task", f.Field)
	}
	if err := f.Task.Validate(); err != nil {
		return err
	}
	fld, ok := f.Task.Field(f.Field)
	if !ok {
		return fmt.Errorf("join: task %s has no field %q", f.Task.Name, f.Field)
	}
	if fld.Response.Kind != task.RadioResponse {
		return fmt.Errorf("join: feature %q is not categorical; κ-based ambiguity detection requires categorical features (paper §3.2)", f.Field)
	}
	return nil
}

// ExtractOptions configures a feature-extraction pass.
type ExtractOptions struct {
	// Combined asks all features about a tuple in one interface
	// (paper §3.3.4's combined trials); otherwise one interface per
	// feature.
	Combined bool
	// BatchSize merges several tuples per HIT (paper used 4–5).
	BatchSize int
	// Assignments is votes per question (default 5).
	Assignments int
	// Combiner merges votes (default MajorityVote, as in §3.3.4).
	Combiner combine.Combiner
	// GroupID labels the HIT group.
	GroupID string
}

func (o *ExtractOptions) fillDefaults() {
	if o.BatchSize == 0 {
		o.BatchSize = 4
	}
	if o.Assignments == 0 {
		o.Assignments = 5
	}
	if o.Combiner == nil {
		o.Combiner = combine.MajorityVote{}
	}
	if o.GroupID == "" {
		o.GroupID = "extract"
	}
}

// Extraction holds combined feature values for one relation.
type Extraction struct {
	// Relation is the extracted table.
	Relation *relation.Relation
	// Values maps tuple key → feature name → combined value
	// ("UNKNOWN" is a legal value and matches everything).
	Values map[uint64]map[string]string
	// Matrices holds the per-feature rating matrices for κ.
	Matrices map[string]*stats.RatingMatrix
	// HITCount is the HITs this pass posted.
	HITCount int
	// AssignmentCount is total assignments.
	AssignmentCount int
	// Votes are the raw categorical votes (question = "feat|<field>|<key>").
	Votes []combine.Vote
}

// Value returns the combined value of a feature for a tuple.
func (e *Extraction) Value(t relation.Tuple, feature string) (string, bool) {
	m, ok := e.Values[t.Key()]
	if !ok {
		return "", false
	}
	v, ok := m[feature]
	return v, ok
}

// Kappa computes Fleiss' κ for one feature's votes — the paper's
// ambiguity signal (Table 4).
func (e *Extraction) Kappa(feature string) (float64, error) {
	m, ok := e.Matrices[feature]
	if !ok {
		return 0, fmt.Errorf("join: no votes for feature %q", feature)
	}
	return m.FleissKappa()
}

// KappaSample estimates κ from repeated random subject samples, as the
// paper does with 50 draws of 25% of celebrities (Table 4).
func (e *Extraction) KappaSample(feature string, samples int, frac float64, rng *rand.Rand) (mean, std float64, err error) {
	m, ok := e.Matrices[feature]
	if !ok {
		return 0, 0, fmt.Errorf("join: no votes for feature %q", feature)
	}
	return m.KappaSampler(samples, frac, false, rng.Intn)
}

// Extract runs the feature-extraction linear pass over a relation.
func Extract(rel *relation.Relation, features []Feature, opts ExtractOptions, market crowd.Marketplace) (*Extraction, error) {
	opts.fillDefaults()
	if len(features) == 0 {
		return nil, fmt.Errorf("join: no features to extract")
	}
	for _, f := range features {
		if err := f.Validate(); err != nil {
			return nil, err
		}
	}

	b := hit.NewBuilder(opts.GroupID, opts.Assignments, 1)
	var hits []*hit.HIT
	if opts.Combined {
		perTuple := make([][]hit.Question, 0, rel.Len())
		for i := 0; i < rel.Len(); i++ {
			qs := make([]hit.Question, len(features))
			for j, f := range features {
				qs[j] = hit.Question{
					Kind:   hit.GenerativeQ,
					Task:   f.Task.Name,
					Tuple:  rel.Row(i),
					Fields: []string{f.Field},
				}
			}
			perTuple = append(perTuple, qs)
		}
		var err error
		hits, err = b.Combine(perTuple, opts.BatchSize)
		if err != nil {
			return nil, err
		}
	} else {
		for _, f := range features {
			qs := make([]hit.Question, rel.Len())
			for i := 0; i < rel.Len(); i++ {
				qs[i] = hit.Question{
					ID:     b.QuestionID(),
					Kind:   hit.GenerativeQ,
					Task:   f.Task.Name,
					Tuple:  rel.Row(i),
					Fields: []string{f.Field},
				}
			}
			fh, err := b.Merge(qs, opts.BatchSize)
			if err != nil {
				return nil, err
			}
			hits = append(hits, fh...)
		}
	}

	run, err := market.Run(&hit.Group{ID: opts.GroupID, HITs: hits})
	if err != nil {
		return nil, err
	}

	ext := &Extraction{
		Relation: rel,
		Values:   make(map[uint64]map[string]string, rel.Len()),
		Matrices: make(map[string]*stats.RatingMatrix, len(features)),
	}
	ext.HITCount = len(hits)
	ext.AssignmentCount = run.TotalAssignments

	// Route votes: field name → feature.
	fieldFeature := make(map[string]Feature, len(features))
	optionIdx := make(map[string]map[string]int, len(features))
	subjectIdx := make(map[uint64]int, rel.Len())
	for i := 0; i < rel.Len(); i++ {
		subjectIdx[rel.Row(i).Key()] = i
	}
	for _, f := range features {
		fieldFeature[f.Field] = f
		fld, _ := f.Task.Field(f.Field)
		cats := make(map[string]int, len(fld.Response.Options))
		for i, o := range fld.Response.Options {
			cats[strings.ToUpper(o)] = i
			cats[o] = i
		}
		optionIdx[f.Field] = cats
		m, err := stats.NewRatingMatrix(rel.Len(), len(fld.Response.Options))
		if err != nil {
			return nil, err
		}
		ext.Matrices[f.Field] = m
	}

	qByHIT := make(map[string]*hit.HIT, len(hits))
	for _, h := range hits {
		qByHIT[h.ID] = h
	}
	for _, a := range run.Assignments {
		h := qByHIT[a.HITID]
		if h == nil {
			continue
		}
		for i, ans := range a.Answers {
			if i >= len(h.Questions) {
				break
			}
			q := &h.Questions[i]
			subj, ok := subjectIdx[q.Tuple.Key()]
			if !ok {
				continue
			}
			for field, raw := range ans.Fields {
				f, ok := fieldFeature[field]
				if !ok {
					continue
				}
				ext.Votes = append(ext.Votes, combine.Vote{
					Question: voteKey(field, q.Tuple.Key()),
					Worker:   a.WorkerID,
					Value:    raw,
				})
				if cat, ok := optionIdx[field][raw]; ok {
					if err := ext.Matrices[f.Field].Add(subj, cat); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// Combine votes into per-tuple values.
	decisions, err := opts.Combiner.Combine(ext.Votes)
	if err != nil {
		return nil, err
	}
	for i := 0; i < rel.Len(); i++ {
		key := rel.Row(i).Key()
		vals := make(map[string]string, len(features))
		for _, f := range features {
			if d, ok := decisions[voteKey(f.Field, key)]; ok {
				vals[f.Field] = d.Value
			} else {
				vals[f.Field] = "UNKNOWN"
			}
		}
		ext.Values[key] = vals
	}
	return ext, nil
}

func voteKey(field string, tupleKey uint64) string {
	return fmt.Sprintf("feat|%s|%x", field, tupleKey)
}

// PairPasses reports whether a pair survives all feature filters:
// values must match or be UNKNOWN on either side (paper §2.4).
func PairPasses(le, re *Extraction, left, right relation.Tuple, features []string) bool {
	for _, f := range features {
		lv, lok := le.Value(left, f)
		rv, rok := re.Value(right, f)
		if !lok || !rok {
			continue // unextracted features cannot prune
		}
		if strings.EqualFold(lv, "UNKNOWN") || strings.EqualFold(rv, "UNKNOWN") {
			continue
		}
		if lv != rv {
			return false
		}
	}
	return true
}

// FilteredSeq streams the feature-compatible subset of the cross
// product in row-major order, without materializing the O(|R|·|S|)
// candidate slice — survivors flow straight into HIT batching.
func FilteredSeq(left, right *relation.Relation, le, re *Extraction, features []string) PairSeq {
	return func(yield func(Pair) bool) {
		for i := 0; i < left.Len(); i++ {
			for j := 0; j < right.Len(); j++ {
				if PairPasses(le, re, left.Row(i), right.Row(j), features) {
					if !yield(Pair{LeftIndex: i, RightIndex: j, Left: left.Row(i), Right: right.Row(j)}) {
						return
					}
				}
			}
		}
	}
}

// FilteredPairs prunes the cross product to feature-compatible pairs.
// Prefer FilteredSeq for large inputs; this materializes the slice.
func FilteredPairs(left, right *relation.Relation, le, re *Extraction, features []string) []Pair {
	return CollectPairs(FilteredSeq(left, right, le, re, features))
}

// EmpiricalSelectivity returns the fraction of cross-product pairs that
// survive the given features — the σ of §3.2 measured on data rather
// than estimated from independence.
func EmpiricalSelectivity(left, right *relation.Relation, le, re *Extraction, features []string) float64 {
	total := left.Len() * right.Len()
	if total == 0 {
		return 0
	}
	survivors := 0
	FilteredSeq(left, right, le, re, features)(func(Pair) bool {
		survivors++
		return true
	})
	return float64(survivors) / float64(total)
}

// SelectionConfig holds the thresholds for automatic feature selection
// (paper §3.2's three discard cases).
type SelectionConfig struct {
	// MaxSelectivity discards features that barely prune (case 1):
	// a feature whose σ exceeds this keeps too many pairs to pay for
	// its extraction pass (default 0.9).
	MaxSelectivity float64
	// MaxResultLoss discards features whose filter would drop more
	// than this fraction of sample join results (case 2: the feature
	// "doesn't actually guarantee that two entities will not join").
	// Default 0.05.
	MaxResultLoss float64
	// MinKappa discards ambiguous features (case 3): κ below this
	// means workers can't agree on the value (default 0.5).
	MinKappa float64
	// SampleFrac is the fraction of each table sampled for the
	// selectivity and result-loss estimates (default 0.25).
	SampleFrac float64
	// Seed drives sampling.
	Seed int64
}

func (c *SelectionConfig) fillDefaults() {
	if c.MaxSelectivity == 0 {
		c.MaxSelectivity = 0.9
	}
	if c.MaxResultLoss == 0 {
		c.MaxResultLoss = 0.05
	}
	if c.MinKappa == 0 {
		c.MinKappa = 0.5
	}
	if c.SampleFrac == 0 {
		c.SampleFrac = 0.25
	}
}

// FeatureVerdict explains one feature's selection decision.
type FeatureVerdict struct {
	Feature     string
	Kappa       float64
	Selectivity float64
	ResultLoss  float64
	Kept        bool
	Reason      string
}

// ChooseFeatures applies the paper's three pruning criteria against a
// reference match set (typically from a sample join) and returns the
// features worth keeping plus a verdict per feature.
//
// referenceMatches are pairs believed to truly join (e.g. the result of
// a crowd join on a sample without filters). For each feature f, the
// result loss is |j(f−) − j(f+)| / |j(f−)| computed over that set —
// matches killed by adding f to the other filters.
func ChooseFeatures(left, right *relation.Relation, le, re *Extraction,
	features []Feature, referenceMatches []Pair, cfg SelectionConfig) ([]Feature, []FeatureVerdict, error) {
	cfg.fillDefaults()
	names := make([]string, len(features))
	for i, f := range features {
		names[i] = f.Field
	}
	var kept []Feature
	var verdicts []FeatureVerdict
	for i, f := range features {
		v := FeatureVerdict{Feature: f.Field, Kept: true}
		kappa, err := le.Kappa(f.Field)
		if err != nil {
			return nil, nil, err
		}
		v.Kappa = kappa
		v.Selectivity = EmpiricalSelectivity(left, right, le, re, []string{f.Field})

		// Result loss: matches that pass all OTHER features but die
		// when f is added.
		others := make([]string, 0, len(names)-1)
		others = append(others, names[:i]...)
		others = append(others, names[i+1:]...)
		var passOthers, passAll int
		for _, m := range referenceMatches {
			if PairPasses(le, re, m.Left, m.Right, others) {
				passOthers++
				if PairPasses(le, re, m.Left, m.Right, []string{f.Field}) {
					passAll++
				}
			}
		}
		if passOthers > 0 {
			v.ResultLoss = float64(passOthers-passAll) / float64(passOthers)
		}

		switch {
		case v.Kappa < cfg.MinKappa:
			v.Kept = false
			v.Reason = fmt.Sprintf("ambiguous: κ=%.2f < %.2f", v.Kappa, cfg.MinKappa)
		case v.ResultLoss > cfg.MaxResultLoss:
			v.Kept = false
			v.Reason = fmt.Sprintf("drops %.0f%% of sample join results", v.ResultLoss*100)
		case v.Selectivity > cfg.MaxSelectivity:
			v.Kept = false
			v.Reason = fmt.Sprintf("not selective: σ=%.2f > %.2f", v.Selectivity, cfg.MaxSelectivity)
		default:
			v.Reason = "kept"
		}
		if v.Kept {
			kept = append(kept, f)
		}
		verdicts = append(verdicts, v)
	}
	return kept, verdicts, nil
}

// SamplePairs draws a uniform sample of the cross product for selection
// estimates (paper §3.2 runs filters "on a small sample of the data
// set"). Reservoir sampling over the streamed cross product keeps
// memory at O(sample) instead of O(|R|·|S|).
func SamplePairs(left, right *relation.Relation, frac float64, rng *rand.Rand) []Pair {
	total := left.Len() * right.Len()
	if total == 0 {
		return nil
	}
	if frac >= 1 {
		return CrossPairs(left, right)
	}
	n := int(frac * float64(total))
	if n < 1 {
		n = 1
	}
	reservoir := make([]Pair, 0, n)
	seen := 0
	CrossSeq(left, right)(func(p Pair) bool {
		if len(reservoir) < n {
			reservoir = append(reservoir, p)
		} else if j := rng.Intn(seen + 1); j < n {
			reservoir[j] = p
		}
		seen++
		return true
	})
	return reservoir
}

// FilteredResult reports a filtered join run with its extraction costs.
type FilteredResult struct {
	*Result
	// ExtractionHITs counts the linear-pass HITs (both tables).
	ExtractionHITs int
	// SavedComparisons is |R||S| − candidates.
	SavedComparisons int
	// FeaturesUsed names the filters applied.
	FeaturesUsed []string
	// LeftExtraction and RightExtraction expose the feature passes.
	LeftExtraction, RightExtraction *Extraction
}

// TotalHITs is extraction plus join HITs — the paper's cost metric for
// Table 2 and Table 5.
func (r *FilteredResult) TotalHITs() int { return r.ExtractionHITs + r.Result.HITCount }

// ExtractBoth runs the feature-extraction linear passes for the two
// sides of a join concurrently — they are independent HIT groups, so
// overlapping them halves the extraction phase's wall clock (§2.5's
// pipelined execution). If both sides were handed the same combiner
// instance, the right side gets a clone (combine.Cloner); a shared
// stateful combiner that cannot be cloned forces the passes to run
// sequentially rather than race on its state.
func ExtractBoth(left, right *relation.Relation, leftFeatures, rightFeatures []Feature,
	lo, ro ExtractOptions, market crowd.Marketplace) (*Extraction, *Extraction, error) {
	if sameCombinerInstance(lo.Combiner, ro.Combiner) {
		if c, ok := lo.Combiner.(combine.Cloner); ok {
			ro.Combiner = c.CloneCombiner()
		} else {
			le, lerr := Extract(left, leftFeatures, lo, market)
			if lerr != nil {
				return nil, nil, lerr
			}
			re, rerr := Extract(right, rightFeatures, ro, market)
			// Keep the completed left side alongside the error so its
			// spend is still accountable, matching the concurrent path.
			return le, re, rerr
		}
	}
	type out struct {
		ext *Extraction
		err error
	}
	lch := make(chan out, 1)
	go func() {
		ext, err := Extract(left, leftFeatures, lo, market)
		lch <- out{ext, err}
	}()
	re, rerr := Extract(right, rightFeatures, ro, market)
	l := <-lch
	// On error, the side that completed is still returned alongside
	// the error so callers can account the HITs it already spent.
	err := l.err
	if err == nil {
		err = rerr
	}
	return l.ext, re, err
}

// sameCombinerInstance reports whether a and b are one shared mutable
// combiner. Only pointer-shaped combiners can share state; value
// combiners (MajorityVote) are stateless copies by construction.
func sameCombinerInstance(a, b combine.Combiner) bool {
	if a == nil || b == nil {
		return false
	}
	va := reflect.ValueOf(a)
	if va.Kind() != reflect.Pointer {
		return false
	}
	vb := reflect.ValueOf(b)
	return vb.Kind() == reflect.Pointer && va.Pointer() == vb.Pointer()
}

// RunFiltered extracts features on both tables (concurrently), prunes
// the cross product, and runs the join on the streamed survivors
// (paper §3.2's full pipeline). A single stateful extOpts.Combiner is
// safe: ExtractBoth clones it per side (or serializes the passes when
// it cannot be cloned).
func RunFiltered(left, right *relation.Relation, jt *task.EquiJoin,
	features []Feature, extOpts ExtractOptions, joinOpts Options,
	market crowd.Marketplace) (*FilteredResult, error) {
	lo := extOpts
	lo.GroupID = joinOpts.GroupID + "/extract-left"
	ro := extOpts
	ro.GroupID = joinOpts.GroupID + "/extract-right"
	le, re, err := ExtractBoth(left, right, features, features, lo, ro, market)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(features))
	for i, f := range features {
		names[i] = f.Field
	}
	res, err := RunSeq(FilteredSeq(left, right, le, re, names), jt, joinOpts, market)
	if err != nil {
		return nil, err
	}
	return &FilteredResult{
		Result:           res,
		ExtractionHITs:   le.HITCount + re.HITCount,
		SavedComparisons: left.Len()*right.Len() - res.Candidates,
		FeaturesUsed:     names,
		LeftExtraction:   le,
		RightExtraction:  re,
	}, nil
}
