// Package core ties Qurk's pieces into an engine: it owns the crowd
// filter and generative operators (paper §2.1–§2.2), the task library,
// the marketplace handle, the result cache, and the cost ledger. The
// join and sort operators live in internal/join and internal/sortop;
// core provides the shared execution services and the simple operators.
package core

import (
	"fmt"

	"qurk/internal/combine"
	"qurk/internal/crowd"
	"qurk/internal/hit"
	"qurk/internal/relation"
	"qurk/internal/task"
)

// FilterOptions configures a crowd filter pass.
type FilterOptions struct {
	// BatchSize merges tuples per HIT (default 5).
	BatchSize int
	// Assignments is votes per tuple (default 5, paper §2.1).
	Assignments int
	// Combiner merges votes (default MajorityVote).
	Combiner combine.Combiner
	// GroupID labels the HIT group.
	GroupID string
	// Negate keeps tuples the crowd said NO to (for NOT udf(...)).
	Negate bool
	// Cache, when set, memoizes per-tuple votes.
	Cache *hit.Cache
}

func (o *FilterOptions) fillDefaults() {
	if o.BatchSize == 0 {
		o.BatchSize = 5
	}
	if o.Assignments == 0 {
		o.Assignments = 5
	}
	if o.Combiner == nil {
		o.Combiner = combine.MajorityVote{}
	}
	if o.GroupID == "" {
		o.GroupID = "filter"
	}
}

// FilterResult is a crowd filter outcome.
type FilterResult struct {
	// Passed holds tuples the combiner accepted.
	Passed *relation.Relation
	// Decisions maps row index → accepted.
	Decisions []bool
	// Confidence maps row index → combiner confidence.
	Confidence []float64
	// HITCount, AssignmentCount, MakespanHours: cost/latency metrics.
	HITCount, AssignmentCount int
	MakespanHours             float64
	// Votes are raw votes for re-combination.
	Votes []combine.Vote
	// CacheHits counts tuples answered from the cache without posting.
	CacheHits int
}

// RunFilter executes a crowd filter over every row of rel.
func RunFilter(rel *relation.Relation, ft *task.Filter, opts FilterOptions, market crowd.Marketplace) (*FilterResult, error) {
	opts.fillDefaults()
	if err := ft.Validate(); err != nil {
		return nil, err
	}
	n := rel.Len()
	res := &FilterResult{
		Passed:     relation.New(rel.Name(), rel.Schema()),
		Decisions:  make([]bool, n),
		Confidence: make([]float64, n),
	}
	if n == 0 {
		return res, nil
	}

	qid := func(i int) string { return fmt.Sprintf("%s/t%05d", opts.GroupID, i) }
	var questions []hit.Question
	askIdx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		q := hit.Question{
			ID:    qid(i),
			Kind:  hit.FilterQ,
			Task:  ft.Name,
			Tuple: rel.Row(i),
		}
		if opts.Cache != nil {
			if cached, ok := opts.Cache.Lookup(&q); ok {
				for _, ca := range cached {
					res.Votes = append(res.Votes, combine.Vote{
						Question: q.ID, Worker: ca.WorkerID, Value: combine.BoolVote(ca.Answer.Bool),
					})
				}
				res.CacheHits++
				continue
			}
		}
		questions = append(questions, q)
		askIdx = append(askIdx, i)
	}

	if len(questions) > 0 {
		b := hit.NewBuilder(opts.GroupID, opts.Assignments, 1)
		hits, err := b.Merge(questions, opts.BatchSize)
		if err != nil {
			return nil, err
		}
		run, err := market.Run(&hit.Group{ID: opts.GroupID, HITs: hits})
		if err != nil {
			return nil, err
		}
		res.HITCount = len(hits)
		res.AssignmentCount = run.TotalAssignments
		res.MakespanHours = run.MakespanHours

		perQuestion := map[string][]hit.CachedAnswer{}
		hit.ForEachAnswer(hits, run.Assignments, func(q *hit.Question, worker string, ans hit.Answer) {
			res.Votes = append(res.Votes, combine.Vote{
				Question: q.ID, Worker: worker, Value: combine.BoolVote(ans.Bool),
			})
			perQuestion[q.ID] = append(perQuestion[q.ID], hit.CachedAnswer{WorkerID: worker, Answer: ans})
		})
		if opts.Cache != nil {
			for qi := range questions {
				q := &questions[qi]
				opts.Cache.Store(q, perQuestion[q.ID])
			}
		}
		_ = askIdx
	}

	decisions, err := opts.Combiner.Combine(res.Votes)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		d, ok := decisions[qid(i)]
		accept := ok && d.Value == "yes"
		if opts.Negate {
			accept = ok && d.Value == "no"
		}
		res.Decisions[i] = accept
		res.Confidence[i] = d.Confidence
		if accept {
			if err := res.Passed.Append(rel.Row(i)); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}
