package core

import (
	"fmt"
	"strings"

	"qurk/internal/combine"
	"qurk/internal/cost"
	"qurk/internal/crowd"
	"qurk/internal/hit"
	"qurk/internal/join"
	"qurk/internal/query"
	"qurk/internal/relation"
	"qurk/internal/task"
)

// LibraryEntry is a registered task plus its DSL formal parameters
// (empty for tasks constructed in Go against concrete column names).
type LibraryEntry struct {
	Task   task.Task
	Params []string
}

// Library resolves UDF names to task templates for the planner.
type Library struct {
	entries map[string]LibraryEntry
}

// NewLibrary returns an empty library.
func NewLibrary() *Library { return &Library{entries: map[string]LibraryEntry{}} }

// Register adds a task with optional formal parameters.
func (l *Library) Register(t task.Task, params ...string) error {
	if err := t.Validate(); err != nil {
		return err
	}
	key := strings.ToLower(t.TaskName())
	if _, dup := l.entries[key]; dup {
		return fmt.Errorf("core: duplicate task %q", t.TaskName())
	}
	l.entries[key] = LibraryEntry{Task: t, Params: params}
	return nil
}

// MustRegister panics on error (examples, tests).
func (l *Library) MustRegister(t task.Task, params ...string) {
	if err := l.Register(t, params...); err != nil {
		panic(err)
	}
}

// LoadScript registers every TASK definition from a parsed script.
func (l *Library) LoadScript(s *query.Script) error {
	for _, td := range s.Tasks {
		t, err := query.BuildTask(td)
		if err != nil {
			return err
		}
		if err := l.Register(t, td.Params...); err != nil {
			return err
		}
	}
	return nil
}

// Lookup resolves a task by name.
func (l *Library) Lookup(name string) (LibraryEntry, error) {
	e, ok := l.entries[strings.ToLower(name)]
	if !ok {
		return LibraryEntry{}, fmt.Errorf("core: unknown task %q", name)
	}
	return e, nil
}

// Resolve implements the planner's TaskSource interface.
func (l *Library) Resolve(name string) (task.Task, []string, error) {
	e, err := l.Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	return e.Task, e.Params, nil
}

// Names lists registered tasks.
func (l *Library) Names() []string {
	out := make([]string, 0, len(l.entries))
	for n := range l.entries {
		out = append(out, n)
	}
	return out
}

// SortMethod selects the ORDER BY implementation (paper §4).
type SortMethod uint8

const (
	// SortCompare uses the comparison interface (quadratic HITs).
	SortCompare SortMethod = iota
	// SortRate uses the rating interface (linear HITs).
	SortRate
	// SortHybrid seeds with ratings and refines with comparisons.
	SortHybrid
)

// String names the method.
func (s SortMethod) String() string {
	switch s {
	case SortCompare:
		return "Compare"
	case SortRate:
		return "Rate"
	case SortHybrid:
		return "Hybrid"
	default:
		return fmt.Sprintf("SortMethod(%d)", uint8(s))
	}
}

// Options are the engine-wide execution knobs — the parameters the paper
// tunes per experiment (batch sizes, interfaces, combiners, assignment
// counts).
type Options struct {
	// Assignments per HIT (default 5).
	Assignments int
	// FilterBatch / GenerativeBatch / JoinBatch / ExtractBatch /
	// RateBatch are merge batch sizes (defaults 5, 5, 5, 4, 5).
	FilterBatch, GenerativeBatch, JoinBatch, ExtractBatch, RateBatch int
	// JoinAlgorithm with its grid shape (default Naive 5).
	JoinAlgorithm      join.Algorithm
	GridRows, GridCols int
	// ExtractCombined asks all POSSIBLY features in one interface
	// (default true — the paper found it cheaper and more accurate).
	ExtractCombined bool
	// AutoSelectFeatures enables §3.2's automatic feature pruning: a
	// crowd join over a sample of the cross product estimates each
	// POSSIBLY feature's result loss, and features that are ambiguous
	// (low κ), unselective, or error-prone are discarded before the
	// full join ("the system automatically selects which features to
	// apply").
	AutoSelectFeatures bool
	// FeatureSelection holds the §3.2 thresholds when
	// AutoSelectFeatures is on.
	FeatureSelection join.SelectionConfig
	// SortMethod with its parameters (defaults: Compare, group 5).
	SortMethod       SortMethod
	CompareGroupSize int
	HybridIterations int
	HybridStep       int
	// Combiner is "MajorityVote" (default) or "QualityAdjust".
	Combiner string
	// Seed drives operator-internal randomness (group covers, context
	// samples).
	Seed int64
	// ExecBatch is the number of tuples per batch flowing between
	// streaming executor operators (default 32). Query results are
	// bit-identical at any setting; it only tunes scheduling
	// granularity and per-batch overhead.
	ExecBatch int
	// StreamChunkHITs is how many HITs a streaming crowd operator
	// accumulates before posting them to the marketplace as one
	// sub-group (default 8). Crowd answers are bit-identical at any
	// setting — HIT identity and content never depend on it — but
	// latency modeling does: smaller chunks start sooner and overlap
	// more, larger chunks ramp marketplace throughput better.
	StreamChunkHITs int
	// StreamLookahead bounds how many posted-but-uncollected sub-groups
	// a streaming crowd operator keeps in flight (default 2). It caps
	// the HITs wasted when a downstream LIMIT stops pulling.
	StreamLookahead int
	// RefusedRetries bounds how many times a streaming crowd operator
	// re-posts the questions of a refused HIT (batch too effortful for
	// the price) at half the batch size before giving up (default 2;
	// -1 disables). Questions that exhaust the budget resolve with zero
	// votes and are reported in Stats.Incomplete — previously ALL
	// refused questions were silently rejected.
	RefusedRetries int
	// BreakerMemTuples caps the tuples a pipeline breaker holds in
	// memory (0 = unlimited). With a positive cap the machine sort
	// becomes an external merge sort over spilled runs, the crowd sort
	// externally partitions its input by group key, and the crowd
	// join's build side spills to disk partitions — all via
	// internal/spill's temp-dir run files, merged k-way with
	// deterministic tie-breaks, so results are bit-identical at any
	// cap. One crowd-sorted group (and the streaming operators' own
	// in-flight bookkeeping) still materializes in memory.
	BreakerMemTuples int
	// SplitSortGroups bounds crowd-sort memory for oversized groups:
	// with BreakerMemTuples > 0, a group larger than the cap splits
	// into consecutive windows of at most cap tuples, each window is
	// crowd-sorted independently, and the sorted windows merge through
	// the external sorter on normalized within-window rank — the
	// paper's windowed-sort approximation (§4.3's bounded-comparison
	// spirit), keeping one window rather than one group in memory.
	// Results stay bit-identical at any ExecBatch/StreamChunkHITs for a
	// fixed cap, but the cap becomes plan-shaping for oversized groups
	// (different sort HITs than the unsplit run), so this is opt-in and
	// off by default.
	SplitSortGroups bool
	// ExpiredRetries bounds how many times a streaming crowd operator
	// re-posts a HIT some of whose assignments expired — accepted by a
	// worker but never submitted before the assignment deadline
	// (default 2; -1 disables). The re-posted HIT carries the same
	// questions but requests only the missing assignments, and its ID
	// derives from the expired HIT's lineage so results stay
	// bit-identical at any StreamChunkHITs/lookahead setting. Votes
	// already collected before the expiry are kept and merged with the
	// retry's. Questions that exhaust the budget resolve with whatever
	// votes arrived; those left with zero votes are reported in
	// Stats.Incomplete.
	ExpiredRetries int
	// MTurk configures the live Mechanical Turk marketplace backend
	// (internal/mturk) for deployments that post real HITs instead of
	// simulating them. SimMarket runs ignore it.
	MTurk MTurkOptions
	// Replan enables adaptive mid-query re-optimization: the streaming
	// executor re-costs interface choices at pipeline breakers from
	// statistics observed during the run (see ReplanOptions). Off by
	// default, so plans and HIT identity are unchanged unless opted in.
	Replan ReplanOptions
	// DeadlineHours is a wall-clock budget for the whole query,
	// measured on the service's injectable clock from submission. Zero
	// (the default) means no deadline. An overdue query fails alone —
	// its journal is sealed "interrupted" so it stays resumable — while
	// other queries on the same daemon keep running. Crowd work posted
	// before the deadline is spent either way (the marketplace has no
	// recall); the deadline bounds how long the service keeps waiting,
	// which matters most while a marketplace outage holds the circuit
	// breaker open.
	DeadlineHours float64
}

// ReplanOptions controls adaptive mid-query re-optimization. Switch
// decisions derive only from count-based boundaries (tuple and pair
// ordinals), never from timing, so the same query+seed re-plans at the
// same point and produces identical rows at any ExecBatch /
// StreamChunkHITs / partition setting. Durable runs journal every
// re-plan decision as a breaker checkpoint, and resumes verify it.
type ReplanOptions struct {
	// Enabled turns mid-query re-optimization on.
	Enabled bool
	// ProbeTuples is how many probe-side (left) tuples a streaming
	// join observes before re-costing NaiveBatch vs SmartBatch for
	// the remaining pairs from the measured POSSIBLY pass fraction
	// (default 16). Crowd sorts re-cost per group regardless, since a
	// group's true size is known the moment it materializes.
	ProbeTuples int
	// MinQuality is the quality floor a re-planned interface must
	// clear before the executor switches to it (default 0.85, the
	// optimizer's own floor). A cheaper interface below the floor is
	// rejected and the original plan keeps running.
	MinQuality float64
}

// MTurkOptions are the knobs a live MTurk deployment needs; the zero
// value targets the requester sandbox with credentials from the
// standard AWS environment variables. internal/mturk consumes these via
// mturk.FromOptions.
type MTurkOptions struct {
	// Endpoint is the MTurk REST endpoint base URL. Empty selects the
	// sandbox (mturk-requester-sandbox.us-east-1.amazonaws.com); any
	// compatible endpoint — including an in-process fake for tests —
	// works.
	Endpoint string
	// Region is the AWS region used for request signing (default
	// us-east-1, the only region MTurk serves).
	Region string
	// AccessKey and SecretKey are the AWS credentials the requests are
	// signed with. Empty falls back to AWS_ACCESS_KEY_ID /
	// AWS_SECRET_ACCESS_KEY.
	AccessKey, SecretKey string
	// SessionToken is the optional STS session token for temporary
	// credentials (AWS_SESSION_TOKEN when empty).
	SessionToken string
	// PollIntervalSeconds is how long the client waits between
	// ListAssignmentsForHIT sweeps (default 15).
	PollIntervalSeconds float64
	// MaxPollIntervalSeconds caps the exponential backoff the poll
	// loop applies while sweeps make no progress (default 8× the poll
	// interval); any new assignment resets the cadence.
	MaxPollIntervalSeconds float64
	// AssignmentDurationSeconds is how long an accepted assignment may
	// stay unsubmitted before it expires (default 600). Together with
	// ExpiredRetries this is the timeout policy: assignments still
	// missing at the deadline are reported expired and their HIT's
	// questions re-posted.
	AssignmentDurationSeconds int
	// LifetimeSeconds is how long a posted HIT stays visible on the
	// marketplace (default 3600).
	LifetimeSeconds int
	// SkipApprove leaves submitted assignments unapproved instead of
	// auto-approving them on collection (default false: approve, so
	// workers are paid promptly as the paper's experiments did).
	SkipApprove bool
}

func (o *Options) fillDefaults() {
	if o.Assignments == 0 {
		o.Assignments = 5
	}
	if o.FilterBatch == 0 {
		o.FilterBatch = 5
	}
	if o.GenerativeBatch == 0 {
		o.GenerativeBatch = 5
	}
	if o.JoinBatch == 0 {
		o.JoinBatch = 5
	}
	if o.ExtractBatch == 0 {
		o.ExtractBatch = 4
	}
	if o.RateBatch == 0 {
		o.RateBatch = 5
	}
	if o.GridRows == 0 {
		o.GridRows = 3
	}
	if o.GridCols == 0 {
		o.GridCols = 3
	}
	if o.CompareGroupSize == 0 {
		o.CompareGroupSize = 5
	}
	if o.HybridIterations == 0 {
		o.HybridIterations = 20
	}
	if o.HybridStep == 0 {
		o.HybridStep = 6
	}
	if o.Combiner == "" {
		o.Combiner = "MajorityVote"
	}
	// Non-positive values are configuration errors (a zero-lookahead
	// pipeline can never post); clamp to defaults rather than panic or
	// silently return empty results.
	if o.ExecBatch <= 0 {
		o.ExecBatch = 32
	}
	if o.StreamChunkHITs <= 0 {
		o.StreamChunkHITs = 8
	}
	if o.StreamLookahead <= 0 {
		o.StreamLookahead = 2
	}
	if o.RefusedRetries == 0 {
		o.RefusedRetries = 2
	}
	if o.ExpiredRetries == 0 {
		o.ExpiredRetries = 2
	}
	if o.Replan.Enabled {
		if o.Replan.ProbeTuples <= 0 {
			o.Replan.ProbeTuples = 16
		}
		if o.Replan.MinQuality <= 0 {
			o.Replan.MinQuality = 0.85
		}
	}
}

// JournalSink receives breaker checkpoints from the executor: a digest
// of a pipeline breaker's materialized state (sort-group order, join
// build table, extraction carry, adaptive-filter round) that a durable
// run appends to its write-ahead journal and a resumed run verifies
// against it. internal/wal's Journal implements it; the field is nil
// for non-durable runs and operators must treat it as optional.
type JournalSink interface {
	// Checkpoint records or verifies one breaker checkpoint. kind names
	// the breaker class, label the operator instance (typically its plan
	// path), digest its state fingerprint, and clock the crowd-hours
	// watermark when it was reached.
	Checkpoint(kind, label string, digest uint64, clock float64) error
}

// AnswerStore is a content-addressed vote store consulted before a
// crowd question is posted and fed after its votes fold. The per-run
// hit.Cache satisfies it; internal/answerstore implements the
// persistent, cross-query variant the multi-tenant service shares
// between queries and tenants. Implementations must be safe for
// concurrent use: one store serves many queries at once.
type AnswerStore interface {
	// Lookup returns stored votes for a question with identical content
	// (Question.CacheKey), if the store's policy allows serving them.
	Lookup(q *hit.Question) ([]hit.CachedAnswer, bool)
	// Store records a completed question's votes for future lookups.
	Store(q *hit.Question, answers []hit.CachedAnswer)
}

// ObservedStats is the persistent observed-statistics store consulted
// by the optimizer at plan time and fed by the executor after every
// run: per-task observed selectivities, POSSIBLY pass fractions, sort
// group sizes, and worker latency/agreement (the obstats.Kind*
// constants name the kinds). internal/obstats implements it; the field
// is nil for engines that neither record nor use history.
type ObservedStats interface {
	// Observe records one observed statistic with the given weight
	// (typically the tuple or pair count it was measured over).
	Observe(task, kind string, value, weight float64)
	// Estimate returns the weighted mean and total weight for one
	// (task, kind), or ok=false when nothing was ever observed.
	Estimate(task, kind string) (value, weight float64, ok bool)
}

// Engine bundles the services every operator needs (paper Fig. 1: query
// optimizer → executor → task manager → HIT compiler → crowd).
type Engine struct {
	Catalog *relation.Catalog
	Library *Library
	Market  crowd.Marketplace
	Ledger  *cost.Ledger
	Cache   *hit.Cache
	Options Options
	// Journal, when non-nil, receives breaker checkpoints during
	// execution (durable runs; see internal/wal and qurk.RunQueryDurable).
	Journal JournalSink
	// Answers, when non-nil, is the shared cross-query answer store: a
	// question whose content already has servable votes is answered from
	// the store and never posted, and every freshly collected question
	// feeds it. Unlike Cache (per-run, consulted only by the adaptive
	// filter path), Answers is consulted by every crowd operator and is
	// typically shared by many engines in a qurkd process.
	Answers AnswerStore
	// ObStats, when non-nil, is the shared observed-statistics store:
	// the optimizer seeds selectivity / pass-fraction / group-size
	// priors from it at plan time, and the executor feeds it what the
	// run actually observed. Like Answers it is typically shared by
	// many engines in a qurkd process. It deliberately lives on the
	// Engine rather than in Options: Options is hashed into the durable
	// journal fingerprint, and attaching history must not change what
	// journal a run can resume.
	ObStats ObservedStats
}

// NewEngine builds an engine with fresh catalog/library/ledger/cache.
func NewEngine(market crowd.Marketplace, opts Options) *Engine {
	opts.fillDefaults()
	return &Engine{
		Catalog: relation.NewCatalog(),
		Library: NewLibrary(),
		Market:  market,
		Ledger:  cost.NewLedger(),
		Cache:   hit.NewCache(),
		Options: opts,
	}
}

// Combiner instantiates the configured combiner.
func (e *Engine) Combiner() (combine.Combiner, error) {
	return combine.Lookup(e.Options.Combiner)
}
