package core

import (
	"strings"
	"testing"

	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/hit"
	"qurk/internal/query"
	"qurk/internal/task"
)

func celebMarket(t *testing.T, n int, seed int64) (*dataset.Celebrities, *crowd.SimMarket) {
	t.Helper()
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: n, Seed: seed})
	return d, crowd.NewSimMarket(crowd.DefaultConfig(seed), d.Oracle())
}

func TestRunFilterIsFemale(t *testing.T) {
	d, m := celebMarket(t, 30, 1)
	res, err := RunFilter(d.Celeb, dataset.IsFemaleTask(), FilterOptions{Assignments: 5, BatchSize: 5}, m)
	if err != nil {
		t.Fatal(err)
	}
	// ceil(30/5) = 6 HITs.
	if res.HITCount != 6 {
		t.Errorf("HITs = %d, want 6", res.HITCount)
	}
	// Accuracy vs ground truth.
	correct := 0
	for i := 0; i < d.Celeb.Len(); i++ {
		truth, _ := d.Oracle().FilterTruth("isFemale", d.Celeb.Row(i))
		if res.Decisions[i] == truth {
			correct++
		}
	}
	if correct < 27 {
		t.Errorf("filter accuracy = %d/30", correct)
	}
	if res.Passed.Len() == 0 || res.Passed.Len() == 30 {
		t.Errorf("passed = %d rows, expected a real split", res.Passed.Len())
	}
}

func TestRunFilterNegate(t *testing.T) {
	d, m := celebMarket(t, 20, 3)
	pos, err := RunFilter(d.Celeb, dataset.IsFemaleTask(), FilterOptions{GroupID: "a"}, m)
	if err != nil {
		t.Fatal(err)
	}
	neg, err := RunFilter(d.Celeb, dataset.IsFemaleTask(), FilterOptions{GroupID: "b", Negate: true}, m)
	if err != nil {
		t.Fatal(err)
	}
	// Positive and negative partitions should cover everything (same
	// votes could disagree across runs, so allow small slack).
	total := pos.Passed.Len() + neg.Passed.Len()
	if total < 18 || total > 22 {
		t.Errorf("pos %d + neg %d = %d, want ≈20", pos.Passed.Len(), neg.Passed.Len(), total)
	}
}

func TestRunFilterCache(t *testing.T) {
	d, m := celebMarket(t, 10, 5)
	cache := hit.NewCache()
	r1, err := RunFilter(d.Celeb, dataset.IsFemaleTask(), FilterOptions{GroupID: "c1", Cache: cache}, m)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHits != 0 || r1.HITCount == 0 {
		t.Errorf("first run: cacheHits=%d hits=%d", r1.CacheHits, r1.HITCount)
	}
	r2, err := RunFilter(d.Celeb, dataset.IsFemaleTask(), FilterOptions{GroupID: "c2", Cache: cache}, m)
	if err != nil {
		t.Fatal(err)
	}
	// Second run answers everything from cache: no HITs posted.
	if r2.CacheHits != 10 || r2.HITCount != 0 {
		t.Errorf("second run: cacheHits=%d hits=%d, want 10, 0", r2.CacheHits, r2.HITCount)
	}
	// And decisions identical.
	for i := range r1.Decisions {
		if r1.Decisions[i] != r2.Decisions[i] {
			t.Fatalf("cached decision %d differs", i)
		}
	}
}

func TestRunFilterEmptyAndValidation(t *testing.T) {
	d, m := celebMarket(t, 5, 7)
	empty := d.Celeb.Limit(0)
	res, err := RunFilter(empty, dataset.IsFemaleTask(), FilterOptions{}, m)
	if err != nil || res.HITCount != 0 {
		t.Errorf("empty filter: %v, %v", res, err)
	}
	bad := &task.Filter{Prompt: task.MustPrompt("x")}
	if _, err := RunFilter(d.Celeb, bad, FilterOptions{}, m); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestRunGenerativeNumInScene(t *testing.T) {
	mv := dataset.NewMovie(dataset.MovieConfig{Scenes: 40, Actors: 3, Seed: 11})
	m := crowd.NewSimMarket(crowd.DefaultConfig(11), mv.Oracle())
	res, err := RunGenerative(mv.Scenes, dataset.NumInSceneTask(), GenerativeOptions{BatchSize: 4, Assignments: 5}, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.HITCount != 10 { // ceil(40/4)
		t.Errorf("HITs = %d, want 10", res.HITCount)
	}
	// Output schema gains the numInScene column.
	if !res.Output.Schema().Has("numInScene.numInScene") {
		t.Fatalf("output schema = %s", res.Output.Schema())
	}
	correct := 0
	for i := 0; i < mv.Scenes.Len(); i++ {
		want, _, _ := mv.Oracle().FieldValue("numInScene", "numInScene", mv.Scenes.Row(i))
		if res.Values[i]["numInScene"] == want {
			correct++
		}
	}
	if correct < 37 {
		t.Errorf("numInScene accuracy = %d/40 (paper: near-perfect)", correct)
	}
}

func TestRunGenerativeNormalizer(t *testing.T) {
	a := dataset.NewAnimals()
	m := crowd.NewSimMarket(crowd.DefaultConfig(13), a.Oracle())
	res, err := RunGenerative(a.Rel, dataset.AnimalInfoTask(), GenerativeOptions{Assignments: 5}, m)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < a.Rel.Len(); i++ {
		want := a.Rel.Row(i).MustGet("name").Text()
		if res.Values[i]["common"] == want {
			correct++
		}
	}
	if correct < 22 {
		t.Errorf("animalInfo.common accuracy = %d/27", correct)
	}
}

func TestRunGenerativeFieldValidation(t *testing.T) {
	a := dataset.NewAnimals()
	m := crowd.NewSimMarket(crowd.DefaultConfig(1), a.Oracle())
	if _, err := RunGenerative(a.Rel, dataset.AnimalInfoTask(), GenerativeOptions{Fields: []string{"missing"}}, m); err == nil {
		t.Error("missing field accepted")
	}
}

func TestLibrary(t *testing.T) {
	l := NewLibrary()
	if err := l.Register(dataset.IsFemaleTask()); err != nil {
		t.Fatal(err)
	}
	if err := l.Register(dataset.IsFemaleTask()); err == nil {
		t.Error("duplicate accepted")
	}
	tk, params, err := l.Resolve("ISFEMALE")
	if err != nil || tk.TaskName() != "isFemale" || len(params) != 0 {
		t.Errorf("resolve: %v %v %v", tk, params, err)
	}
	if _, _, err := l.Resolve("nope"); err == nil {
		t.Error("missing resolve should error")
	}
	if len(l.Names()) != 1 {
		t.Errorf("names = %v", l.Names())
	}
}

func TestLibraryLoadScript(t *testing.T) {
	src := `
TASK isFemale(field) TYPE Filter:
	Prompt: "<img src='%s'> Is the person a woman?", tuple[field]
	YesText: "Yes"
	NoText: "No"
	Combiner: MajorityVote
`
	script, err := query.ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLibrary()
	if err := l.LoadScript(script); err != nil {
		t.Fatal(err)
	}
	_, params, err := l.Resolve("isFemale")
	if err != nil || len(params) != 1 || params[0] != "field" {
		t.Errorf("params = %v, %v", params, err)
	}
}

func TestEngineDefaults(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 5, Seed: 1})
	m := crowd.NewSimMarket(crowd.DefaultConfig(1), d.Oracle())
	e := NewEngine(m, Options{})
	if e.Options.Assignments != 5 || e.Options.FilterBatch != 5 || e.Options.Combiner != "MajorityVote" {
		t.Errorf("defaults = %+v", e.Options)
	}
	comb, err := e.Combiner()
	if err != nil || comb.Name() != "MajorityVote" {
		t.Errorf("combiner = %v, %v", comb, err)
	}
	e2 := NewEngine(m, Options{Combiner: "QualityAdjust"})
	comb, err = e2.Combiner()
	if err != nil || comb.Name() != "QualityAdjust" {
		t.Errorf("QA combiner = %v, %v", comb, err)
	}
	if got := SortCompare.String() + SortRate.String() + SortHybrid.String(); !strings.Contains(got, "Rate") {
		t.Errorf("sort names = %q", got)
	}
}
