package core

import (
	"fmt"

	"qurk/internal/combine"
	"qurk/internal/crowd"
	"qurk/internal/hit"
	"qurk/internal/relation"
	"qurk/internal/task"
)

// GenerativeOptions configures a generative pass (paper §2.2): workers
// produce field values for each tuple; votes are normalized and combined
// into new columns.
type GenerativeOptions struct {
	// BatchSize merges tuples per HIT (default 5).
	BatchSize int
	// Assignments is votes per tuple (default 5).
	Assignments int
	// GroupID labels the HIT group.
	GroupID string
	// Fields restricts output to the named fields (nil = all).
	Fields []string
}

func (o *GenerativeOptions) fillDefaults() {
	if o.BatchSize == 0 {
		o.BatchSize = 5
	}
	if o.Assignments == 0 {
		o.Assignments = 5
	}
	if o.GroupID == "" {
		o.GroupID = "generative"
	}
}

// GenerativeResult carries the produced columns.
type GenerativeResult struct {
	// Output is the input relation extended with one text column per
	// generative field ("<task>.<field>").
	Output *relation.Relation
	// Values maps row index → field → combined value.
	Values []map[string]string
	// HITCount, AssignmentCount, MakespanHours: cost metrics.
	HITCount, AssignmentCount int
	MakespanHours             float64
}

// RunGenerative executes a generative task over every row, normalizes
// each field's votes with the field's Normalizer, and combines them with
// the field's Combiner.
func RunGenerative(rel *relation.Relation, gt *task.Generative, opts GenerativeOptions, market crowd.Marketplace) (*GenerativeResult, error) {
	opts.fillDefaults()
	if err := gt.Validate(); err != nil {
		return nil, err
	}
	fields := opts.Fields
	if len(fields) == 0 {
		for _, f := range gt.Fields {
			fields = append(fields, f.Name)
		}
	}
	for _, f := range fields {
		if _, ok := gt.Field(f); !ok {
			return nil, fmt.Errorf("core: task %s has no field %q", gt.Name, f)
		}
	}

	n := rel.Len()
	res := &GenerativeResult{Values: make([]map[string]string, n)}
	qid := func(i int) string { return fmt.Sprintf("%s/t%05d", opts.GroupID, i) }

	questions := make([]hit.Question, n)
	for i := 0; i < n; i++ {
		questions[i] = hit.Question{
			ID:     qid(i),
			Kind:   hit.GenerativeQ,
			Task:   gt.Name,
			Tuple:  rel.Row(i),
			Fields: fields,
		}
	}
	b := hit.NewBuilder(opts.GroupID, opts.Assignments, 1)
	hits, err := b.Merge(questions, opts.BatchSize)
	if err != nil {
		return nil, err
	}
	run, err := market.Run(&hit.Group{ID: opts.GroupID, HITs: hits})
	if err != nil {
		return nil, err
	}
	res.HITCount = len(hits)
	res.AssignmentCount = run.TotalAssignments
	res.MakespanHours = run.MakespanHours

	// Normalize and bucket votes per (tuple, field).
	normalizers := map[string]task.Normalizer{}
	combiners := map[string]combine.Combiner{}
	for _, fname := range fields {
		spec, _ := gt.Field(fname)
		norm, err := task.LookupNormalizer(spec.Normalizer)
		if err != nil {
			return nil, err
		}
		normalizers[fname] = norm
		comb, err := combine.Lookup(spec.Combiner)
		if err != nil {
			return nil, err
		}
		combiners[fname] = comb
	}
	votesByField := map[string][]combine.Vote{}
	qByHIT := make(map[string]*hit.HIT, len(hits))
	for _, h := range hits {
		qByHIT[h.ID] = h
	}
	for _, a := range run.Assignments {
		h := qByHIT[a.HITID]
		if h == nil {
			continue
		}
		for i, ans := range a.Answers {
			if i >= len(h.Questions) {
				break
			}
			q := &h.Questions[i]
			for _, fname := range fields {
				raw, ok := ans.Fields[fname]
				if !ok {
					continue
				}
				votesByField[fname] = append(votesByField[fname], combine.Vote{
					Question: q.ID,
					Worker:   a.WorkerID,
					Value:    normalizers[fname](raw),
				})
			}
		}
	}
	decisions := map[string]map[string]combine.Decision{}
	for fname, votes := range votesByField {
		d, err := combiners[fname].Combine(votes)
		if err != nil {
			return nil, err
		}
		decisions[fname] = d
	}

	// Build the output relation: input columns + one per field.
	cols := rel.Schema().Columns()
	for _, fname := range fields {
		cols = append(cols, relation.Column{Name: gt.Name + "." + fname, Kind: relation.KindText})
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	res.Output = relation.New(rel.Name(), schema)
	for i := 0; i < n; i++ {
		res.Values[i] = map[string]string{}
		vals := make([]relation.Value, 0, schema.Len())
		row := rel.Row(i)
		for c := 0; c < row.Len(); c++ {
			vals = append(vals, row.At(c))
		}
		for _, fname := range fields {
			d := decisions[fname][qid(i)]
			res.Values[i][fname] = d.Value
			if d.Value == "UNKNOWN" {
				vals = append(vals, relation.Unknown())
			} else {
				vals = append(vals, relation.Text(d.Value))
			}
		}
		if err := res.Output.AppendValues(vals...); err != nil {
			return nil, err
		}
	}
	return res, nil
}
