package experiment

import (
	"fmt"

	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/sortop"
	"qurk/internal/stats"
)

// Figure7Result reproduces Figure 7: hybrid sort τ trajectories on the
// 40-square dataset.
type Figure7Result struct {
	N int
	// RateTau/RateHITs is the rating-only starting point.
	RateTau  float64
	RateHITs int
	// CompareTau/CompareHITs is the full comparison sort endpoint.
	CompareTau  float64
	CompareHITs int
	// Series maps strategy name → τ after each additional HIT.
	Series map[string][]float64
	// Order preserves strategy ordering for rendering.
	Order []string
}

// Figure7 runs the four refinement schemes. Paper: Window-6 reaches
// τ > 0.95 within ~30 extra HITs and τ = 1 in about half Compare's
// HITs; Window-5 stalls (t divides 40); random and confidence trail.
func Figure7(cfg Config) (*Figure7Result, error) {
	n := 40
	iterations := 40
	if cfg.Scale == Quick {
		n = 20
		iterations = 16
	}
	sq := dataset.NewSquares(n)
	scores := sq.TrueScores()

	res := &Figure7Result{N: n, Series: map[string][]float64{}}

	// Endpoints.
	m := crowd.NewSimMarket(cfg.trialMarketConfig(0), sq.Oracle())
	cr, err := sortop.Compare(sq.Rel, dataset.SquareSorterTask(), sortop.CompareOptions{
		GroupSize: 5, Assignments: 5, Seed: cfg.Seed, GroupID: "f7/cmp",
	}, m)
	if err != nil {
		return nil, err
	}
	res.CompareHITs = cr.HITCount
	res.CompareTau, err = tauAgainstScores(cr.Order, scores)
	if err != nil {
		return nil, err
	}

	type scheme struct {
		name string
		opts sortop.HybridOptions
	}
	schemes := []scheme{
		{"Random", sortop.HybridOptions{Strategy: sortop.RandomWindow}},
		{"Confidence", sortop.HybridOptions{Strategy: sortop.ConfidenceWindow}},
		{"Window 5", sortop.HybridOptions{Strategy: sortop.SlidingWindow, Step: 5}},
		{"Window 6", sortop.HybridOptions{Strategy: sortop.SlidingWindow, Step: 6}},
	}
	for _, sc := range schemes {
		opts := sc.opts
		opts.WindowSize = 5
		opts.Iterations = iterations
		opts.Assignments = 5
		opts.Seed = cfg.Seed
		opts.GroupID = "f7/" + sc.name
		opts.Rate = sortop.RateOptions{BatchSize: 5, Assignments: 5, Seed: cfg.Seed}
		m := crowd.NewSimMarket(cfg.trialMarketConfig(0), sq.Oracle())
		hy, err := sortop.Hybrid(sq.Rel, dataset.SquareSorterTask(), opts, m)
		if err != nil {
			return nil, err
		}
		if res.RateHITs == 0 {
			res.RateHITs = hy.RateHITs
			res.RateTau, err = tauAgainstScores(hy.InitialOrder, scores)
			if err != nil {
				return nil, err
			}
		}
		var series []float64
		for _, order := range hy.Trace {
			tau, err := tauAgainstScores(order, scores)
			if err != nil {
				return nil, err
			}
			series = append(series, tau)
		}
		res.Series[sc.name] = series
		res.Order = append(res.Order, sc.name)
	}
	return res, nil
}

// FinalTau returns a strategy's τ after all iterations.
func (r *Figure7Result) FinalTau(strategy string) float64 {
	s := r.Series[strategy]
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// HITsToTau returns how many refinement HITs a strategy needed to first
// reach the target τ, or -1 if it never did.
func (r *Figure7Result) HITsToTau(strategy string, target float64) int {
	for i, tau := range r.Series[strategy] {
		if tau >= target {
			return i + 1
		}
	}
	return -1
}

// Render prints the τ-vs-HITs trajectories.
func (r *Figure7Result) Render() string {
	t := newTable(append([]string{"HITs"}, r.Order...)...)
	maxLen := 0
	for _, s := range r.Series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	step := 1
	if maxLen > 20 {
		step = maxLen / 20
	}
	for i := 0; i < maxLen; i += step {
		cells := []string{fmt.Sprint(i + 1)}
		for _, name := range r.Order {
			s := r.Series[name]
			if i < len(s) {
				cells = append(cells, f3(s[i]))
			} else {
				cells = append(cells, "-")
			}
		}
		t.add(cells...)
	}
	head := fmt.Sprintf(
		"Figure 7: hybrid sort on %d squares\n  Rate-only: tau=%.3f at %d HITs; Compare: tau=%.3f at %d HITs\n",
		r.N, r.RateTau, r.RateHITs, r.CompareTau, r.CompareHITs)
	return head + t.String()
}

// AnimalsHybridResult reproduces §4.2.4's closing experiment.
type AnimalsHybridResult struct {
	StartTau, EndTau float64
	Iterations       int
}

// AnimalsHybrid runs Q2 (animal size) through the window scheme.
// Paper: τ improves from ≈0.76 to ≈0.90 within 20 iterations.
func AnimalsHybrid(cfg Config) (*AnimalsHybridResult, error) {
	an := dataset.NewAnimals()
	scores, err := an.TrueScores("animalSize")
	if err != nil {
		return nil, err
	}
	iterations := 20
	m := crowd.NewSimMarket(cfg.trialMarketConfig(0), an.Oracle())
	hy, err := sortop.Hybrid(an.Rel, dataset.AnimalSizeTask(), sortop.HybridOptions{
		Strategy: sortop.SlidingWindow, WindowSize: 5, Step: 6,
		Iterations: iterations, Assignments: 5, Seed: cfg.Seed,
		Rate:    sortop.RateOptions{BatchSize: 5, Assignments: 5, Seed: cfg.Seed},
		GroupID: "animals-hybrid",
	}, m)
	if err != nil {
		return nil, err
	}
	res := &AnimalsHybridResult{Iterations: iterations}
	res.StartTau, err = tauAgainstScores(hy.InitialOrder, scores)
	if err != nil {
		return nil, err
	}
	res.EndTau, err = tauAgainstScores(hy.Order, scores)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the improvement line.
func (r *AnimalsHybridResult) Render() string {
	return fmt.Sprintf(
		"Sec 4.2.4: animals (Q2) hybrid — tau %.3f -> %.3f in %d iterations (paper: 0.76 -> 0.90 in 20)\n",
		r.StartTau, r.EndTau, r.Iterations)
}

// tauSanity guards against the stats import being elided.
var _ = stats.Mean
