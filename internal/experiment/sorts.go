package experiment

import (
	"fmt"

	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/relation"
	"qurk/internal/sortop"
	"qurk/internal/stats"
)

// tauAgainstScores computes τ-b between a result order and latent scores.
func tauAgainstScores(order []int, scores []float64) (float64, error) {
	pos := make([]float64, len(order))
	sc := make([]float64, len(order))
	for rank, idx := range order {
		pos[rank] = float64(rank)
		sc[rank] = scores[idx]
	}
	return stats.KendallTauB(pos, sc)
}

// CompareBatchingResult reproduces §4.2.2's comparison-batching
// microbenchmark.
type CompareBatchingResult struct {
	N    int
	Rows []CompareBatchingRow
}

// CompareBatchingRow is one group size's outcome.
type CompareBatchingRow struct {
	GroupSize int
	Tau       float64
	HITs      int
	Makespan  float64
	Completed bool
}

// SquareCompareBatching sorts squares with group sizes 5, 10, 20.
// Paper: τ = 1.0 at S = 5 and 10; S = 10 is ≥3× slower; S = 20 never
// completes.
func SquareCompareBatching(cfg Config) (*CompareBatchingResult, error) {
	n := 40
	if cfg.Scale == Quick {
		n = 20
	}
	sq := dataset.NewSquares(n)
	scores := sq.TrueScores()
	res := &CompareBatchingResult{N: n}
	for _, s := range []int{5, 10, 20} {
		m := crowd.NewSimMarket(cfg.trialMarketConfig(0), sq.Oracle())
		cr, err := sortop.Compare(sq.Rel, dataset.SquareSorterTask(), sortop.CompareOptions{
			GroupSize: s, Assignments: 5, Seed: cfg.Seed, GroupID: fmt.Sprintf("cmp%d", s),
		}, m)
		if err != nil {
			return nil, err
		}
		row := CompareBatchingRow{GroupSize: s, HITs: cr.HITCount, Makespan: cr.MakespanHours}
		row.Completed = len(cr.Incomplete) == 0
		if row.Completed {
			row.Tau, err = tauAgainstScores(cr.Order, scores)
			if err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the microbenchmark rows.
func (r *CompareBatchingResult) Render() string {
	t := newTable("Group size", "Tau", "HITs", "Makespan (h)", "Completed")
	for _, row := range r.Rows {
		tau := "-"
		if row.Completed {
			tau = f3(row.Tau)
		}
		t.add(fmt.Sprint(row.GroupSize), tau, fmt.Sprint(row.HITs), f3(row.Makespan), fmt.Sprint(row.Completed))
	}
	return fmt.Sprintf("Sec 4.2.2: Compare batching on %d squares (paper: tau=1.0 at S=5,10; S=20 refused)\n", r.N) + t.String()
}

// RateBatchingResult reproduces §4.2.2's rating-batching microbenchmark.
type RateBatchingResult struct {
	N       int
	Rows    []RateBatchingRow
	MeanTau float64
	StdTau  float64
}

// RateBatchingRow is one batch size's outcome.
type RateBatchingRow struct {
	BatchSize   int
	Assignments int
	Tau         float64
	HITs        int
}

// SquareRateBatching rates squares at batch sizes 1–10. Paper: τ ≈ 0.78
// (σ ≈ 0.058) regardless of batch size; 5 assignments ≈ 10.
func SquareRateBatching(cfg Config) (*RateBatchingResult, error) {
	n := 40
	if cfg.Scale == Quick {
		n = 20
	}
	sq := dataset.NewSquares(n)
	scores := sq.TrueScores()
	res := &RateBatchingResult{N: n}
	var taus []float64
	for trial := 0; trial < 2; trial++ {
		for _, batch := range []int{1, 2, 5, 10} {
			m := crowd.NewSimMarket(cfg.trialMarketConfig(trial), sq.Oracle())
			rr, err := sortop.Rate(sq.Rel, dataset.SquareSorterTask(), sortop.RateOptions{
				BatchSize: batch, Assignments: 5, Seed: cfg.Seed + int64(batch),
				GroupID: fmt.Sprintf("rate/b%d/t%d", batch, trial),
			}, m)
			if err != nil {
				return nil, err
			}
			tau, err := tauAgainstScores(rr.Order, scores)
			if err != nil {
				return nil, err
			}
			taus = append(taus, tau)
			res.Rows = append(res.Rows, RateBatchingRow{
				BatchSize: batch, Assignments: 5, Tau: tau, HITs: rr.HITCount,
			})
		}
	}
	// Assignment-count comparison: 10 votes vs 5 (diminishing returns).
	m := crowd.NewSimMarket(cfg.trialMarketConfig(0), sq.Oracle())
	rr, err := sortop.Rate(sq.Rel, dataset.SquareSorterTask(), sortop.RateOptions{
		BatchSize: 5, Assignments: 10, Seed: cfg.Seed, GroupID: "rate/a10",
	}, m)
	if err != nil {
		return nil, err
	}
	tau10, err := tauAgainstScores(rr.Order, scores)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, RateBatchingRow{BatchSize: 5, Assignments: 10, Tau: tau10, HITs: rr.HITCount})
	res.MeanTau, res.StdTau = stats.MeanStd(taus)
	return res, nil
}

// Render prints the batching sweep.
func (r *RateBatchingResult) Render() string {
	t := newTable("Batch", "Assignments", "Tau", "HITs")
	for _, row := range r.Rows {
		t.add(fmt.Sprint(row.BatchSize), fmt.Sprint(row.Assignments), f3(row.Tau), fmt.Sprint(row.HITs))
	}
	return fmt.Sprintf("Sec 4.2.2: Rate batching on %d squares — mean tau %.3f (std %.3f); paper: 0.78 (0.058)\n",
		r.N, r.MeanTau, r.StdTau) + t.String()
}

// RateGranularityResult reproduces §4.2.2's granularity sweep.
type RateGranularityResult struct {
	Rows    []RateGranularityRow
	MeanTau float64
	StdTau  float64
}

// RateGranularityRow is one dataset size's outcome.
type RateGranularityRow struct {
	N    int
	Tau  float64
	HITs int
}

// SquareRateGranularity rates datasets of 20–50 squares at batch 5.
// Paper: τ stable (avg 0.798, std 0.042) — the 7-point scale does not
// degrade as the dataset outgrows it.
func SquareRateGranularity(cfg Config) (*RateGranularityResult, error) {
	sizes := []int{20, 25, 30, 35, 40, 45, 50}
	if cfg.Scale == Quick {
		sizes = []int{20, 30, 40}
	}
	res := &RateGranularityResult{}
	var taus []float64
	for i, n := range sizes {
		sq := dataset.NewSquares(n)
		m := crowd.NewSimMarket(cfg.trialMarketConfig(i%2), sq.Oracle())
		rr, err := sortop.Rate(sq.Rel, dataset.SquareSorterTask(), sortop.RateOptions{
			BatchSize: 5, Assignments: 5, Seed: cfg.Seed + int64(n), GroupID: fmt.Sprintf("gran/%d", n),
		}, m)
		if err != nil {
			return nil, err
		}
		tau, err := tauAgainstScores(rr.Order, sq.TrueScores())
		if err != nil {
			return nil, err
		}
		taus = append(taus, tau)
		res.Rows = append(res.Rows, RateGranularityRow{N: n, Tau: tau, HITs: rr.HITCount})
	}
	res.MeanTau, res.StdTau = stats.MeanStd(taus)
	return res, nil
}

// Render prints the granularity sweep.
func (r *RateGranularityResult) Render() string {
	t := newTable("Dataset size", "Tau", "HITs")
	for _, row := range r.Rows {
		t.add(fmt.Sprint(row.N), f3(row.Tau), fmt.Sprint(row.HITs))
	}
	return fmt.Sprintf("Sec 4.2.2: Rate granularity — mean tau %.3f (std %.3f); paper: 0.798 (0.042)\n",
		r.MeanTau, r.StdTau) + t.String()
}

// runCompareAndRate is shared by Figure 6: run both interfaces over a
// relation under one task.
func runCompareAndRate(cfg Config, rel *relation.Relation, rt rankTask, oracle crowd.Oracle, label string) (*sortop.CompareResult, *sortop.RateResult, error) {
	m1 := crowd.NewSimMarket(cfg.trialMarketConfig(0), oracle)
	cr, err := sortop.Compare(rel, rt.task, sortop.CompareOptions{
		GroupSize: 5, Assignments: 5, Seed: cfg.Seed, GroupID: label + "/cmp",
	}, m1)
	if err != nil {
		return nil, nil, err
	}
	m2 := crowd.NewSimMarket(cfg.trialMarketConfig(1), oracle)
	rr, err := sortop.Rate(rel, rt.task, sortop.RateOptions{
		BatchSize: 5, Assignments: 5, Seed: cfg.Seed, GroupID: label + "/rate",
	}, m2)
	if err != nil {
		return nil, nil, err
	}
	return cr, rr, nil
}
