package experiment

import (
	"fmt"
	"math/rand"

	"qurk/internal/cost"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/join"
	"qurk/internal/relation"
)

// featureTrial is one extraction run over both celebrity tables.
type featureTrial struct {
	Trial    int
	Combined bool
	Left     *join.Extraction
	Right    *join.Extraction
	d        *dataset.Celebrities
	left     *relation.Relation
	right    *relation.Relation
}

// allFeatureNames are the three POSSIBLY features of §2.4.
var allFeatureNames = []string{"gender", "hair", "skin"}

// runFeatureTrials extracts gender/hair/skin on both tables for each
// (trial, combined?) configuration — the paper's 2×2 protocol (§3.3.4).
func runFeatureTrials(cfg Config, n int) ([]featureTrial, *dataset.Celebrities, error) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: n, Seed: cfg.Seed})
	left, right := d.Celeb.Qualify("c"), d.Photos.Qualify("p")
	features := dataset.CelebrityFeatures()
	var out []featureTrial
	for _, combined := range []bool{true, false} {
		for trial := 0; trial < 2; trial++ {
			mc := cfg.trialMarketConfig(trial)
			if !combined {
				// Distinct worker draw per interface style.
				mc.Seed += 77
			}
			m := crowd.NewSimMarket(mc, d.Oracle())
			eo := join.ExtractOptions{
				Combined:    combined,
				BatchSize:   4,
				Assignments: 5,
				GroupID:     fmt.Sprintf("ext/c%v/t%d/l", combined, trial),
			}
			le, err := join.Extract(left, features, eo, m)
			if err != nil {
				return nil, nil, err
			}
			eo.GroupID = fmt.Sprintf("ext/c%v/t%d/r", combined, trial)
			re, err := join.Extract(right, features, eo, m)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, featureTrial{
				Trial: trial + 1, Combined: combined,
				Left: le, Right: re, d: d, left: left, right: right,
			})
		}
	}
	return out, d, nil
}

// filterScore evaluates a feature set on one trial: errors (true matches
// pruned), saved comparisons (non-matching pairs pruned), and the join
// cost in dollars at 5 assignments per pair.
func (ft *featureTrial) filterScore(features []string) (errors, saved int, dollars float64) {
	n := ft.left.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			passes := join.PairPasses(ft.Left, ft.Right, ft.left.Row(i), ft.right.Row(j), features)
			isMatch := ft.d.IsMatch(ft.left.Row(i), ft.right.Row(j))
			switch {
			case isMatch && !passes:
				errors++
			case !isMatch && !passes:
				saved++
			}
		}
	}
	remaining := n*n - saved - errors
	dollars = cost.Dollars(remaining, 5)
	return errors, saved, dollars
}

// Table2Result reproduces Table 2 (feature filtering effectiveness).
type Table2Result struct {
	N    int
	Rows []Table2Row
}

// Table2Row is one trial's outcome.
type Table2Row struct {
	Trial            int
	Combined         bool
	Errors           int
	SavedComparisons int
	JoinCost         float64
}

// Table2 runs the feature-filtering effectiveness experiment. Paper
// (30 celebs): ~590–650 of 870 comparisons saved, 1–5 errors, cost
// $25–$33 vs $67.50 unfiltered; combined interfaces err less.
func Table2(cfg Config) (*Table2Result, error) {
	n := 30
	if cfg.Scale == Quick {
		n = 14
	}
	trials, _, err := runFeatureTrials(cfg, n)
	if err != nil {
		return nil, err
	}
	res := &Table2Result{N: n}
	for _, ft := range trials {
		errs, saved, dollars := ft.filterScore(allFeatureNames)
		res.Rows = append(res.Rows, Table2Row{
			Trial: ft.Trial, Combined: ft.Combined,
			Errors: errs, SavedComparisons: saved, JoinCost: dollars,
		})
	}
	return res, nil
}

// Render prints the paper's Table 2 shape.
func (r *Table2Result) Render() string {
	t := newTable("Trial", "Combined?", "Errors", "Saved Comparisons", "Join Cost")
	for _, row := range r.Rows {
		comb := "N"
		if row.Combined {
			comb = "Y"
		}
		t.add(fmt.Sprint(row.Trial), comb, fmt.Sprint(row.Errors),
			fmt.Sprint(row.SavedComparisons), "$"+f2(row.JoinCost))
	}
	unfiltered := cost.Dollars(r.N*r.N, 5)
	return fmt.Sprintf("Table 2: feature filtering effectiveness (%d celebs; unfiltered join cost $%.2f)\n", r.N, unfiltered) + t.String()
}

// Table3Result reproduces Table 3 (leave-one-out analysis).
type Table3Result struct {
	N    int
	Rows []Table3Row
}

// Table3Row is the outcome with one feature omitted.
type Table3Row struct {
	Omitted          string
	Errors           int
	SavedComparisons int
	JoinCost         float64
}

// Table3 runs the leave-one-out analysis on the first combined trial.
// Paper: omitting hair color removes the errors while keeping most of
// the savings; gender is by far the most selective feature.
func Table3(cfg Config) (*Table3Result, error) {
	n := 30
	if cfg.Scale == Quick {
		n = 14
	}
	trials, _, err := runFeatureTrials(cfg, n)
	if err != nil {
		return nil, err
	}
	// First combined trial, as in the paper.
	var ft *featureTrial
	for i := range trials {
		if trials[i].Combined && trials[i].Trial == 1 {
			ft = &trials[i]
			break
		}
	}
	if ft == nil {
		return nil, fmt.Errorf("experiment: no combined trial found")
	}
	res := &Table3Result{N: n}
	for _, omit := range allFeatureNames {
		var kept []string
		for _, f := range allFeatureNames {
			if f != omit {
				kept = append(kept, f)
			}
		}
		errs, saved, dollars := ft.filterScore(kept)
		res.Rows = append(res.Rows, Table3Row{
			Omitted: omit, Errors: errs, SavedComparisons: saved, JoinCost: dollars,
		})
	}
	return res, nil
}

// Render prints the paper's Table 3 shape.
func (r *Table3Result) Render() string {
	t := newTable("Omitted Feature", "Errors", "Saved Comparisons", "Join Cost")
	for _, row := range r.Rows {
		t.add(row.Omitted, fmt.Sprint(row.Errors),
			fmt.Sprint(row.SavedComparisons), "$"+f2(row.JoinCost))
	}
	return "Table 3: leave-one-out analysis (first combined trial)\n" + t.String()
}

// Table4Result reproduces Table 4 (inter-rater agreement κ).
type Table4Result struct {
	Rows []Table4Row
}

// Table4Row is one trial's κ values, full-data and 25%-sampled.
type Table4Row struct {
	Trial      int
	SampleFrac float64 // 1.0 for full data
	Combined   bool
	Gender     float64
	GenderStd  float64
	Hair       float64
	HairStd    float64
	Skin       float64
	SkinStd    float64
}

// Table4 computes Fleiss' κ per feature per trial, plus 50 random 25%
// samples. Paper: gender κ ≈ .85–.94, hair ≈ .29–.45, skin ≈ .45–.95,
// and the sampled κ tracks the full κ closely.
func Table4(cfg Config) (*Table4Result, error) {
	n := 30
	if cfg.Scale == Quick {
		n = 14
	}
	trials, _, err := runFeatureTrials(cfg, n)
	if err != nil {
		return nil, err
	}
	res := &Table4Result{}
	kappaOf := func(ft *featureTrial, feature string) (float64, error) {
		// κ over the photo (right) table, whose candid shots carry
		// the drifted features.
		return ft.Right.Kappa(feature)
	}
	for i := range trials {
		ft := &trials[i]
		g, err := kappaOf(ft, "gender")
		if err != nil {
			return nil, err
		}
		h, err := kappaOf(ft, "hair")
		if err != nil {
			return nil, err
		}
		s, err := kappaOf(ft, "skin")
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table4Row{
			Trial: ft.Trial, SampleFrac: 1, Combined: ft.Combined,
			Gender: g, Hair: h, Skin: s,
		})
	}
	for i := range trials {
		ft := &trials[i]
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		row := Table4Row{Trial: ft.Trial, SampleFrac: 0.25, Combined: ft.Combined}
		var err error
		row.Gender, row.GenderStd, err = ft.Right.KappaSample("gender", 50, 0.25, rng)
		if err != nil {
			return nil, err
		}
		row.Hair, row.HairStd, err = ft.Right.KappaSample("hair", 50, 0.25, rng)
		if err != nil {
			return nil, err
		}
		row.Skin, row.SkinStd, err = ft.Right.KappaSample("skin", 50, 0.25, rng)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the paper's Table 4 shape.
func (r *Table4Result) Render() string {
	t := newTable("Trial", "Sample", "Combined?", "Gender k (std)", "Hair k (std)", "Skin k (std)")
	fmtK := func(k, std, frac float64) string {
		if frac == 1 {
			return f2(k)
		}
		return fmt.Sprintf("%s (%s)", f2(k), f2(std))
	}
	for _, row := range r.Rows {
		comb := "N"
		if row.Combined {
			comb = "Y"
		}
		t.add(fmt.Sprint(row.Trial),
			fmt.Sprintf("%.0f%%", row.SampleFrac*100), comb,
			fmtK(row.Gender, row.GenderStd, row.SampleFrac),
			fmtK(row.Hair, row.HairStd, row.SampleFrac),
			fmtK(row.Skin, row.SkinStd, row.SampleFrac))
	}
	return "Table 4: inter-rater agreement (Fleiss kappa) per feature\n" + t.String()
}

// FeatureSelectionResult exercises the automatic selector (§3.2's three
// discard rules) on the celebrity data.
type FeatureSelectionResult struct {
	Verdicts []join.FeatureVerdict
}

// FeatureSelection runs ChooseFeatures with the paper's signals: hair
// should be discarded (ambiguous and error-prone), gender kept.
func FeatureSelection(cfg Config) (*FeatureSelectionResult, error) {
	n := 30
	if cfg.Scale == Quick {
		n = 14
	}
	trials, d, err := runFeatureTrials(cfg, n)
	if err != nil {
		return nil, err
	}
	ft := &trials[0]
	var ref []join.Pair
	for _, p := range join.CrossPairs(ft.left, ft.right) {
		if d.IsMatch(p.Left, p.Right) {
			ref = append(ref, p)
		}
	}
	_, verdicts, err := join.ChooseFeatures(ft.left, ft.right, ft.Left, ft.Right,
		dataset.CelebrityFeatures(), ref, join.SelectionConfig{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return &FeatureSelectionResult{Verdicts: verdicts}, nil
}

// Render prints the selector's verdicts.
func (r *FeatureSelectionResult) Render() string {
	t := newTable("Feature", "Kappa", "Selectivity", "ResultLoss", "Kept", "Reason")
	for _, v := range r.Verdicts {
		t.add(v.Feature, f2(v.Kappa), f2(v.Selectivity), f2(v.ResultLoss),
			fmt.Sprint(v.Kept), v.Reason)
	}
	return "Sec 3.2: automatic feature selection verdicts\n" + t.String()
}
