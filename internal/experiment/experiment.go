// Package experiment reproduces every table and figure in the paper's
// evaluation (§3.3, §4.2, §5). Each runner returns a typed result with a
// Render method that prints rows shaped like the paper's, so
// cmd/experiments can regenerate the full evaluation and EXPERIMENTS.md
// can record paper-vs-measured values.
//
// Absolute numbers depend on the live crowd the paper used; the
// simulator is calibrated so the *shape* holds — who wins, by what
// rough factor, and where crossovers fall.
package experiment

import (
	"fmt"
	"strings"

	"qurk/internal/crowd"
)

// Scale trades runtime for fidelity in experiment sizes.
type Scale uint8

const (
	// Full uses the paper's dataset sizes (celebrity 30×30, 40
	// squares, 211 scenes).
	Full Scale = iota
	// Quick shrinks datasets ~2–3× for fast test/bench cycles while
	// preserving every comparative claim.
	Quick
)

// Config is shared by all experiment runners.
type Config struct {
	// Seed drives dataset generation and the first trial; trial k uses
	// Seed+k so "morning" and "evening" runs differ as in the paper.
	Seed int64
	// Scale selects Full or Quick sizes.
	Scale Scale
}

// trialMarketConfig returns the market config for trial t (0-based).
// Odd trials run "in the evening" with lower throughput, reproducing the
// paper's morning/evening latency variance (§3.3.2).
func (c Config) trialMarketConfig(t int) crowd.Config {
	mc := crowd.DefaultConfig(c.Seed + int64(t)*1000)
	if t%2 == 1 {
		mc.TimeOfDayFactor = 0.6
	}
	return mc
}

// table is a minimal fixed-width text table builder for Render methods.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
