package experiment

import (
	"fmt"

	"qurk/internal/combine"
	"qurk/internal/core"
	"qurk/internal/cost"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/join"
	"qurk/internal/relation"
	"qurk/internal/sortop"
)

// Table5Result reproduces Table 5: HIT counts for every operator
// optimization in the end-to-end movie query (§5).
type Table5Result struct {
	Scenes, Actors int
	FilteredScenes int
	Rows           []Table5Row
	// TotalUnoptimized = unfiltered Simple join + Compare sort.
	// TotalOptimized = filter + best join + Rate sort.
	TotalUnoptimized, TotalOptimized int
	// FilterAccuracy is the numInScene extraction accuracy (§5.2:
	// "very accurate, resulting in no errors").
	FilterAccuracy float64
	// JoinTruePos / JoinFalsePos score the Smart-5x5 filtered join
	// (§5.2: "a small number of false positives").
	JoinTruePos, JoinFalsePos int
}

// Table5Row is one (operator, optimization) line.
type Table5Row struct {
	Operator     string
	Optimization string
	HITs         int
}

// Table5 runs the §5 pipeline variants. Paper: 1116 unoptimized HITs vs
// 77 optimized — a 14.5× reduction.
func Table5(cfg Config) (*Table5Result, error) {
	scenes, actors := 211, 5
	if cfg.Scale == Quick {
		scenes, actors = 60, 3
	}
	mv := dataset.NewMovie(dataset.MovieConfig{Scenes: scenes, Actors: actors, Seed: cfg.Seed})
	res := &Table5Result{Scenes: scenes, Actors: actors}
	actorsRel := mv.Actors.Qualify("a")
	scenesRel := mv.Scenes.Qualify("s")

	// --- numInScene filter pass (batch 5 → ceil(scenes/5) HITs; the
	// paper's Table 5 reports 43 for 211 scenes).
	m := crowd.NewSimMarket(cfg.trialMarketConfig(0), mv.Oracle())
	gen, err := core.RunGenerative(scenesRel, dataset.NumInSceneTask(), core.GenerativeOptions{
		BatchSize: 5, Assignments: 5, GroupID: "t5/numInScene",
	}, m)
	if err != nil {
		return nil, err
	}
	filterHITs := gen.HITCount
	res.Rows = append(res.Rows, Table5Row{"Join", "Filter", filterHITs})

	filtered := relation.New(scenesRel.Name(), scenesRel.Schema())
	filterCorrect := 0
	for i := 0; i < scenesRel.Len(); i++ {
		v := gen.Values[i]["numInScene"]
		want, _, _ := mv.Oracle().FieldValue("numInScene", "numInScene", scenesRel.Row(i))
		if v == want {
			filterCorrect++
		}
		if v == "1" || v == "UNKNOWN" {
			if err := filtered.Append(scenesRel.Row(i)); err != nil {
				return nil, err
			}
		}
	}
	res.FilterAccuracy = float64(filterCorrect) / float64(scenesRel.Len())
	res.FilteredScenes = filtered.Len()

	// --- join variants, filtered and unfiltered.
	joinHITs := func(left, right *relation.Relation, opts join.Options, label string) (int, *join.Result, error) {
		m := crowd.NewSimMarket(cfg.trialMarketConfig(0), mv.Oracle())
		opts.Assignments = 5
		opts.GroupID = label
		r, err := join.RunCross(left, right, dataset.InSceneTask(), opts, m)
		if err != nil {
			return 0, nil, err
		}
		return r.HITCount, r, nil
	}
	type variant struct {
		name string
		opts join.Options
	}
	variants := []variant{
		{"Simple", join.Options{Algorithm: join.Simple}},
		{"Naive", join.Options{Algorithm: join.Naive, BatchSize: 5}},
		{"Smart 3x3", join.Options{Algorithm: join.Smart, GridRows: 3, GridCols: 3}},
		{"Smart 5x5", join.Options{Algorithm: join.Smart, GridRows: 5, GridCols: 5}},
	}
	var bestFilteredJoin *join.Result
	var filteredSmart5 int
	for _, v := range variants {
		h, r, err := joinHITs(actorsRel, filtered, v.opts, "t5/fj/"+v.name)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table5Row{"Join", "Filter + " + v.name, filterHITs + h})
		if v.name == "Smart 5x5" {
			filteredSmart5 = filterHITs + h
			bestFilteredJoin = r
		}
	}
	var unfilteredSimple int
	for _, v := range variants {
		if v.name == "Smart 3x3" {
			continue // the paper omits this row
		}
		h, _, err := joinHITs(actorsRel, scenesRel, v.opts, "t5/uj/"+v.name)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table5Row{"Join", "No Filter + " + v.name, h})
		if v.name == "Simple" {
			unfilteredSimple = h
		}
	}

	// Score the optimized join against ground truth (§5.2's "Query
	// Accuracy" notes).
	for _, match := range bestFilteredJoin.Matches {
		if mv.InScene(match.Pair.Left, match.Pair.Right) {
			res.JoinTruePos++
		} else {
			res.JoinFalsePos++
		}
	}

	// --- ORDER BY quality within each actor, over the matched scenes.
	perActor := map[string]*relation.Relation{}
	for _, match := range bestFilteredJoin.Matches {
		name := match.Pair.Left.MustGet("name").Text()
		rel, ok := perActor[name]
		if !ok {
			rel = relation.New("scenes", match.Pair.Right.Schema())
			perActor[name] = rel
		}
		if err := rel.Append(match.Pair.Right); err != nil {
			return nil, err
		}
	}
	compareHITs, rateHITs := 0, 0
	for name, rel := range perActor {
		if rel.Len() < 2 {
			continue
		}
		m := crowd.NewSimMarket(cfg.trialMarketConfig(0), mv.Oracle())
		cr, err := sortop.Compare(rel, dataset.QualityTask(), sortop.CompareOptions{
			GroupSize: 5, Assignments: 5, Seed: cfg.Seed, GroupID: "t5/cmp/" + name,
		}, m)
		if err != nil {
			return nil, err
		}
		compareHITs += cr.HITCount
		m2 := crowd.NewSimMarket(cfg.trialMarketConfig(0), mv.Oracle())
		rr, err := sortop.Rate(rel, dataset.QualityTask(), sortop.RateOptions{
			BatchSize: 5, Assignments: 5, Seed: cfg.Seed, GroupID: "t5/rate/" + name,
		}, m2)
		if err != nil {
			return nil, err
		}
		rateHITs += rr.HITCount
	}
	res.Rows = append(res.Rows, Table5Row{"Order By", "Compare", compareHITs})
	res.Rows = append(res.Rows, Table5Row{"Order By", "Rate", rateHITs})

	res.TotalUnoptimized = unfilteredSimple + compareHITs
	res.TotalOptimized = filteredSmart5 + rateHITs
	return res, nil
}

// Reduction returns the unoptimized/optimized HIT ratio (paper: 14.5×).
func (r *Table5Result) Reduction() float64 {
	if r.TotalOptimized == 0 {
		return 0
	}
	return float64(r.TotalUnoptimized) / float64(r.TotalOptimized)
}

// Render prints the paper's Table 5 shape.
func (r *Table5Result) Render() string {
	t := newTable("Operator", "Optimization", "# HITs")
	for _, row := range r.Rows {
		t.add(row.Operator, row.Optimization, fmt.Sprint(row.HITs))
	}
	t.add("Total (unoptimized)", "No Filter + Simple, Compare", fmt.Sprint(r.TotalUnoptimized))
	t.add("Total (optimized)", "Filter + Smart 5x5, Rate", fmt.Sprint(r.TotalOptimized))
	head := fmt.Sprintf("Table 5: end-to-end movie query (%d scenes, %d actors, %d pass filter) — reduction %.1fx (paper: 14.5x)\n",
		r.Scenes, r.Actors, r.FilteredScenes, r.Reduction())
	foot := fmt.Sprintf("query accuracy: numInScene %.1f%% correct; smart-5x5 join %d true / %d false positives\n",
		r.FilterAccuracy*100, r.JoinTruePos, r.JoinFalsePos)
	return head + t.String() + foot
}

// CostNarrativeResult reproduces the §3.4 cost walk-down for the
// celebrity join: $67.50 naive → ~$27 with feature filtering → ~$3 with
// batching on top.
type CostNarrativeResult struct {
	N                 int
	UnfilteredDollars float64
	FilteredDollars   float64
	BatchedDollars    float64
	FilteredHITs      int
	BatchedHITs       int
}

// CostNarrative runs the celebrity join three ways at 5 assignments.
func CostNarrative(cfg Config) (*CostNarrativeResult, error) {
	n := 30
	if cfg.Scale == Quick {
		n = 14
	}
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: n, Seed: cfg.Seed})
	left, right := d.Celeb.Qualify("c"), d.Photos.Qualify("p")
	res := &CostNarrativeResult{N: n}
	res.UnfilteredDollars = cost.Dollars(n*n, 5)

	// Feature filtering with the selector's choice (drops hair).
	m := crowd.NewSimMarket(cfg.trialMarketConfig(0), d.Oracle())
	features := dataset.CelebrityFeatures()
	eo := join.ExtractOptions{Combined: true, BatchSize: 4, Assignments: 5, GroupID: "cn/l"}
	le, err := join.Extract(left, features, eo, m)
	if err != nil {
		return nil, err
	}
	eo.GroupID = "cn/r"
	re, err := join.Extract(right, features, eo, m)
	if err != nil {
		return nil, err
	}
	var ref []join.Pair
	for _, p := range join.CrossPairs(left, right) {
		if d.IsMatch(p.Left, p.Right) {
			ref = append(ref, p)
		}
	}
	kept, _, err := join.ChooseFeatures(left, right, le, re, features, ref, join.SelectionConfig{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	names := make([]string, len(kept))
	for i, f := range kept {
		names[i] = f.Field
	}
	pairs := join.FilteredPairs(left, right, le, re, names)
	extractionHITs := le.HITCount + re.HITCount
	res.FilteredHITs = extractionHITs + len(pairs) // simple join: 1 pair/HIT
	res.FilteredDollars = cost.Dollars(res.FilteredHITs, 5)

	// Add naive-10 batching on the surviving pairs.
	mb := crowd.NewSimMarket(cfg.trialMarketConfig(0), d.Oracle())
	jr, err := join.Run(pairs, dataset.SamePersonTask(), join.Options{
		Algorithm: join.Naive, BatchSize: 10, Assignments: 5,
		Combiner: combine.MajorityVote{}, GroupID: "cn/join",
	}, mb)
	if err != nil {
		return nil, err
	}
	res.BatchedHITs = extractionHITs + jr.HITCount
	res.BatchedDollars = cost.Dollars(res.BatchedHITs, 5)
	return res, nil
}

// Render prints the walk-down.
func (r *CostNarrativeResult) Render() string {
	return fmt.Sprintf(
		"Sec 3.4 cost narrative (%d celebs, 5 assignments):\n"+
			"  unfiltered simple join:        $%.2f\n"+
			"  + feature filtering:           $%.2f  (%d HITs)\n"+
			"  + naive-10 batching:           $%.2f  (%d HITs)\n"+
			"  (paper: $67.50 -> $27 -> $2.70 on 30 celebs)\n",
		r.N, r.UnfilteredDollars, r.FilteredDollars, r.FilteredHITs, r.BatchedDollars, r.BatchedHITs)
}
