package experiment

import (
	"fmt"
	"math/rand"

	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/relation"
	"qurk/internal/sortop"
	"qurk/internal/stats"
	"qurk/internal/task"
)

// rankTask pairs a Rank template with the relation it sorts.
type rankTask struct {
	name string
	task *task.Rank
	rel  *relation.Relation
}

// Figure6Result reproduces Figure 6: τ and modified κ across the five
// queries of increasing ambiguity (§4.2.3).
type Figure6Result struct {
	Rows []Figure6Row
}

// Figure6Row is one query's metrics, full-data and 10-item-sampled.
type Figure6Row struct {
	Query string
	// Tau is τ-b between the Rate order and the Compare order
	// (Compare is the paper's stand-in for ground truth).
	Tau float64
	// Kappa is the modified Fleiss κ over comparison votes.
	Kappa float64
	// SampleTau/Kappa are means over 50 random 10-item samples, with
	// standard deviations.
	SampleTau, SampleTauStd     float64
	SampleKappa, SampleKappaStd float64
}

// Figure6 runs Q1–Q5. Paper: both τ and κ fall monotonically from Q1
// (squares) to Q5 (random); Q4's κ stays above Q5's (even nonsense
// queries beat random agreement); 10-item samples estimate both well.
func Figure6(cfg Config) (*Figure6Result, error) {
	nsq := 40
	if cfg.Scale == Quick {
		nsq = 20
	}
	sq := dataset.NewSquares(nsq)
	an := dataset.NewAnimals()

	res := &Figure6Result{}
	type qdef struct {
		name   string
		rt     *task.Rank
		rel    *relation.Relation
		oracle crowd.Oracle
	}
	defs := []qdef{
		{"Q1 squares/size", dataset.SquareSorterTask(), sq.Rel, sq.Oracle()},
		{"Q2 animals/size", dataset.AnimalSizeTask(), an.Rel, an.Oracle()},
		{"Q3 animals/danger", dataset.DangerousTask(), an.Rel, an.Oracle()},
		{"Q4 animals/saturn", dataset.SaturnTask(), an.Rel, an.Oracle()},
		{"Q5 random", dataset.RandomOrderTask(), an.Rel, an.Oracle()},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	for qi, q := range defs {
		cr, rr, err := runCompareAndRate(cfg, q.rel, rankTask{name: q.name, task: q.rt}, q.oracle, fmt.Sprintf("q%d", qi+1))
		if err != nil {
			return nil, err
		}
		row := Figure6Row{Query: q.name}
		row.Tau, err = stats.TauBetweenOrders(cr.Order, rr.Order)
		if err != nil {
			return nil, err
		}
		row.Kappa, err = cr.ModifiedKappa()
		if err != nil {
			return nil, err
		}

		// 50 random samples of 10 items.
		n := q.rel.Len()
		sampleSize := 10
		if sampleSize > n {
			sampleSize = n
		}
		var taus, kappas []float64
		comparePos := make([]int, n)
		ratePos := make([]int, n)
		for pos, idx := range cr.Order {
			comparePos[idx] = pos
		}
		for pos, idx := range rr.Order {
			ratePos[idx] = pos
		}
		for s := 0; s < 50; s++ {
			sample := rng.Perm(n)[:sampleSize]
			var a, b []float64
			inSample := map[int]bool{}
			for _, idx := range sample {
				a = append(a, float64(comparePos[idx]))
				b = append(b, float64(ratePos[idx]))
				inSample[idx] = true
			}
			if tau, err := stats.KendallTauB(a, b); err == nil {
				taus = append(taus, tau)
			}
			if k, err := sampleKappa(cr, inSample); err == nil {
				kappas = append(kappas, k)
			}
		}
		row.SampleTau, row.SampleTauStd = stats.MeanStd(taus)
		row.SampleKappa, row.SampleKappaStd = stats.MeanStd(kappas)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// sampleKappa computes the modified κ over comparison votes restricted
// to pairs inside the sampled item set.
func sampleKappa(cr *sortop.CompareResult, inSample map[int]bool) (float64, error) {
	var keys [][2]int
	for k, pv := range cr.Pairs {
		if inSample[k[0]] && inSample[k[1]] && pv.IOverJ+pv.JOverI >= 2 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return 0, fmt.Errorf("experiment: no in-sample pairs")
	}
	m, err := stats.NewRatingMatrix(len(keys), 2)
	if err != nil {
		return 0, err
	}
	for si, k := range keys {
		pv := cr.Pairs[k]
		for v := 0; v < pv.IOverJ; v++ {
			if err := m.Add(si, 0); err != nil {
				return 0, err
			}
		}
		for v := 0; v < pv.JOverI; v++ {
			if err := m.Add(si, 1); err != nil {
				return 0, err
			}
		}
	}
	return m.ModifiedKappa()
}

// Render prints the Figure 6 series.
func (r *Figure6Result) Render() string {
	t := newTable("Query", "Tau", "Tau-sample (std)", "Kappa", "Kappa-sample (std)")
	for _, row := range r.Rows {
		t.add(row.Query, f3(row.Tau),
			fmt.Sprintf("%s (%s)", f3(row.SampleTau), f3(row.SampleTauStd)),
			f3(row.Kappa),
			fmt.Sprintf("%s (%s)", f3(row.SampleKappa), f3(row.SampleKappaStd)))
	}
	return "Figure 6: tau and modified kappa across queries of increasing ambiguity\n" + t.String()
}
