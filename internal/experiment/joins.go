package experiment

import (
	"fmt"

	"qurk/internal/combine"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/join"
	"qurk/internal/stats"
)

// joinVariant names one join configuration from §3.3.2.
type joinVariant struct {
	Name string
	Opts join.Options
}

func baselineVariants() []joinVariant {
	return []joinVariant{
		{"Simple", join.Options{Algorithm: join.Simple}},
		{"Naive", join.Options{Algorithm: join.Naive, BatchSize: 1}},
		{"Smart", join.Options{Algorithm: join.Smart, GridRows: 1, GridCols: 1}},
	}
}

func batchingVariants() []joinVariant {
	return []joinVariant{
		{"Simple", join.Options{Algorithm: join.Simple}},
		{"Naive 3", join.Options{Algorithm: join.Naive, BatchSize: 3}},
		{"Naive 5", join.Options{Algorithm: join.Naive, BatchSize: 5}},
		{"Naive 10", join.Options{Algorithm: join.Naive, BatchSize: 10}},
		{"Smart 2x2", join.Options{Algorithm: join.Smart, GridRows: 2, GridCols: 2}},
		{"Smart 3x3", join.Options{Algorithm: join.Smart, GridRows: 3, GridCols: 3}},
	}
}

// JoinAccuracy reports TP/TN counts under both combiners for one variant.
type JoinAccuracy struct {
	Variant              string
	TruePosMV, TruePosQA int
	TrueNegMV, TrueNegQA int
	Matches              int // ground-truth positives
	NonMatches           int
	HITs                 int
	// TrialMakespans are each trial's completion hours (Fig. 4).
	TrialMakespans []float64
	// TrialP50, TrialP95, TrialP100 are per-trial latency percentiles.
	TrialP50, TrialP95, TrialP100 []float64
	// SingleWorkerTP is the average per-vote true-positive rate (the
	// paper's "expected accuracy from asking a single worker").
	SingleWorkerTP float64
}

// runJoinVariants executes each variant over `trials` marketplace trials
// (5 assignments each), merges the trials' votes, and scores MV and QA
// against ground truth — the paper's two-trial × five-assignment
// protocol (§3.3.2).
func runJoinVariants(cfg Config, n, trials int, variants []joinVariant) ([]JoinAccuracy, *dataset.Celebrities, map[string][]combine.Vote, error) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: n, Seed: cfg.Seed})
	left, right := d.Celeb.Qualify("c"), d.Photos.Qualify("p")
	truth := map[string]bool{}
	for _, p := range join.CrossPairs(left, right) {
		truth[p.Key()] = d.IsMatch(p.Left, p.Right)
	}
	votesByVariant := map[string][]combine.Vote{}
	out := make([]JoinAccuracy, 0, len(variants))
	for vi, v := range variants {
		acc := JoinAccuracy{Variant: v.Name, Matches: n, NonMatches: n*n - n}
		var votes []combine.Vote
		for t := 0; t < trials; t++ {
			m := crowd.NewSimMarket(cfg.trialMarketConfig(t), d.Oracle())
			opts := v.Opts
			opts.Assignments = 5
			opts.GroupID = fmt.Sprintf("%s/t%d", v.Name, t)
			res, err := join.RunCross(left, right, dataset.SamePersonTask(), opts, m)
			if err != nil {
				return nil, nil, nil, err
			}
			votes = append(votes, res.Votes...)
			acc.HITs = res.HITCount
			acc.TrialMakespans = append(acc.TrialMakespans, res.MakespanHours)
			times := make([]float64, 0, len(res.Assignments))
			for _, a := range res.Assignments {
				times = append(times, a.SubmitHours)
			}
			if len(times) > 0 {
				p50, _ := stats.Percentile(times, 50)
				p95, _ := stats.Percentile(times, 95)
				p100, _ := stats.Percentile(times, 100)
				acc.TrialP50 = append(acc.TrialP50, p50)
				acc.TrialP95 = append(acc.TrialP95, p95)
				acc.TrialP100 = append(acc.TrialP100, p100)
			}
		}
		votesByVariant[v.Name] = votes

		// Single-worker TP rate.
		var posVotes, posYes float64
		for _, vt := range votes {
			if truth[vt.Question] {
				posVotes++
				if vt.Value == "yes" {
					posYes++
				}
			}
		}
		if posVotes > 0 {
			acc.SingleWorkerTP = posYes / posVotes
		}

		mv, err := combine.MajorityVote{}.Combine(votes)
		if err != nil {
			return nil, nil, nil, err
		}
		qa := combine.NewQualityAdjust(combine.DefaultQAConfig())
		qad, err := qa.Combine(votes)
		if err != nil {
			return nil, nil, nil, err
		}
		for key, isMatch := range truth {
			mvYes := mv[key].Value == "yes"
			qaYes := qad[key].Value == "yes"
			if isMatch {
				if mvYes {
					acc.TruePosMV++
				}
				if qaYes {
					acc.TruePosQA++
				}
			} else {
				if !mvYes {
					acc.TrueNegMV++
				}
				if !qaYes {
					acc.TrueNegQA++
				}
			}
		}
		out = append(out, acc)
		_ = vi
	}
	return out, d, votesByVariant, nil
}

// Table1Result reproduces Table 1: baseline (unbatched) comparison of
// the three join implementations at 10 merged assignments.
type Table1Result struct {
	N    int
	Rows []JoinAccuracy
}

// Table1 runs the experiment. Paper: 20 celebrities, all three
// implementations within 1 TP of ideal, TN ≈ 380/380.
func Table1(cfg Config) (*Table1Result, error) {
	n := 20
	if cfg.Scale == Quick {
		n = 10
	}
	rows, _, _, err := runJoinVariants(cfg, n, 2, baselineVariants())
	if err != nil {
		return nil, err
	}
	return &Table1Result{N: n, Rows: rows}, nil
}

// Render prints the paper's Table 1 shape.
func (r *Table1Result) Render() string {
	t := newTable("Implementation", "TruePos(MV)", "TruePos(QA)", "TrueNeg(MV)", "TrueNeg(QA)")
	t.add("IDEAL",
		fmt.Sprint(r.N), fmt.Sprint(r.N),
		fmt.Sprint(r.N*r.N-r.N), fmt.Sprint(r.N*r.N-r.N))
	for _, row := range r.Rows {
		t.add(row.Variant,
			fmt.Sprint(row.TruePosMV), fmt.Sprint(row.TruePosQA),
			fmt.Sprint(row.TrueNegMV), fmt.Sprint(row.TrueNegQA))
	}
	return "Table 1: baseline join comparison (no batching, 2 trials x 5 assignments)\n" + t.String()
}

// Figure3Result reproduces Figure 3 (batching vs accuracy) and carries
// the latency data Figure 4 plots from the same runs.
type Figure3Result struct {
	N    int
	Rows []JoinAccuracy
}

// Figure3 runs the batching experiment. Paper: 30 celebrities; batching
// costs a few true positives, QA beats MV on batched runs, true-negative
// rates stay ≈ 1.0.
func Figure3(cfg Config) (*Figure3Result, error) {
	n := 30
	if cfg.Scale == Quick {
		n = 12
	}
	rows, _, _, err := runJoinVariants(cfg, n, 2, batchingVariants())
	if err != nil {
		return nil, err
	}
	return &Figure3Result{N: n, Rows: rows}, nil
}

// Render prints fraction-correct rows like Figure 3's bars.
func (r *Figure3Result) Render() string {
	t := newTable("Variant", "TP frac (MV)", "TP frac (QA)", "TN frac (MV)", "TN frac (QA)", "1-worker TP", "HITs")
	for _, row := range r.Rows {
		t.add(row.Variant,
			f3(float64(row.TruePosMV)/float64(row.Matches)),
			f3(float64(row.TruePosQA)/float64(row.Matches)),
			f3(float64(row.TrueNegMV)/float64(row.NonMatches)),
			f3(float64(row.TrueNegQA)/float64(row.NonMatches)),
			f3(row.SingleWorkerTP),
			fmt.Sprint(row.HITs))
	}
	return fmt.Sprintf("Figure 3: fraction correct on celebrity join (%d celebs, 2 trials x 5 assignments)\n", r.N) + t.String()
}

// Figure4Result renders the latency percentiles from the Figure 3 runs.
type Figure4Result struct {
	Rows []JoinAccuracy
}

// Figure4 reuses Figure 3's runs (the paper plots the same trials).
func Figure4(cfg Config) (*Figure4Result, error) {
	f3res, err := Figure3(cfg)
	if err != nil {
		return nil, err
	}
	return &Figure4Result{Rows: f3res.Rows}, nil
}

// Render prints per-trial completion-time percentiles (hours).
func (r *Figure4Result) Render() string {
	t := newTable("Variant", "Trial", "P50 (h)", "P95 (h)", "P100 (h)")
	for _, row := range r.Rows {
		for tr := range row.TrialP50 {
			t.add(row.Variant, fmt.Sprint(tr+1),
				f3(row.TrialP50[tr]), f3(row.TrialP95[tr]), f3(row.TrialP100[tr]))
		}
	}
	return "Figure 4: completion time percentiles per join variant\n" + t.String()
}

// RegressionResult reproduces §3.3.3: worker accuracy vs tasks done.
type RegressionResult struct {
	Fit     stats.Regression
	Workers int
}

// WorkerAccuracyRegression regresses per-worker accuracy on the number
// of tasks each worker completed across two simple join trials. Paper:
// β > 0, R² = 0.028, p < .05 ⇒ no strong effect.
func WorkerAccuracyRegression(cfg Config) (*RegressionResult, error) {
	n := 30
	if cfg.Scale == Quick {
		n = 12
	}
	_, d, votes, err := runJoinVariants(cfg, n, 2, []joinVariant{{"Simple", join.Options{Algorithm: join.Simple}}})
	if err != nil {
		return nil, err
	}
	truth := map[string]bool{}
	for _, p := range join.CrossPairs(d.Celeb.Qualify("c"), d.Photos.Qualify("p")) {
		truth[p.Key()] = d.IsMatch(p.Left, p.Right)
	}
	type wstat struct{ done, correct int }
	per := map[string]*wstat{}
	for _, v := range votes["Simple"] {
		ws := per[v.Worker]
		if ws == nil {
			ws = &wstat{}
			per[v.Worker] = ws
		}
		ws.done++
		if (v.Value == "yes") == truth[v.Question] {
			ws.correct++
		}
	}
	var xs, ys []float64
	for _, ws := range per {
		if ws.done < 3 {
			continue // too few tasks to estimate accuracy
		}
		xs = append(xs, float64(ws.done))
		ys = append(ys, float64(ws.correct)/float64(ws.done))
	}
	fit, err := stats.LinearRegression(xs, ys)
	if err != nil {
		return nil, err
	}
	return &RegressionResult{Fit: fit, Workers: len(xs)}, nil
}

// Render prints the regression summary.
func (r *RegressionResult) Render() string {
	return fmt.Sprintf(
		"Sec 3.3.3: accuracy vs tasks completed over %d workers\n  slope=%.5f  R2=%.3f  p=%.3f  (paper: slope>0, R2=0.028, p<.05 => no strong effect)\n",
		r.Workers, r.Fit.Slope, r.Fit.R2, r.Fit.PValue)
}
