package experiment

import (
	"strings"
	"testing"
)

// quick returns the fast configuration used by most tests; the full
// paper-scale runs execute in TestFullScale* below.
func quick() Config { return Config{Seed: 42, Scale: Quick} }

func TestTable1BaselinesNearIdeal(t *testing.T) {
	r, err := Table1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Paper Table 1: every implementation within 1 TP of ideal,
		// near-perfect TN, with 10 merged assignments.
		if row.TruePosQA < r.N-1 {
			t.Errorf("%s: QA TP = %d/%d", row.Variant, row.TruePosQA, r.N)
		}
		if row.TrueNegMV < row.NonMatches-2 {
			t.Errorf("%s: MV TN = %d/%d", row.Variant, row.TrueNegMV, row.NonMatches)
		}
	}
	if !strings.Contains(r.Render(), "IDEAL") {
		t.Error("render missing IDEAL row")
	}
}

func TestFigure3BatchingShape(t *testing.T) {
	r, err := Figure3(quick())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]JoinAccuracy{}
	for _, row := range r.Rows {
		byName[row.Variant] = row
	}
	// HIT counts follow the paper's arithmetic.
	if byName["Naive 10"].HITs >= byName["Naive 3"].HITs {
		t.Error("larger batches should need fewer HITs")
	}
	if byName["Smart 3x3"].HITs >= byName["Smart 2x2"].HITs {
		t.Error("3x3 grids should need fewer HITs than 2x2")
	}
	for _, row := range r.Rows {
		// True negatives stay near-perfect under batching (Fig. 3).
		if float64(row.TrueNegQA)/float64(row.NonMatches) < 0.95 {
			t.Errorf("%s: QA TN rate = %.3f", row.Variant, float64(row.TrueNegQA)/float64(row.NonMatches))
		}
		// QA ≥ MV on true positives (the paper's spammer-filtering
		// result), allowing one-pair slack for vote noise.
		if row.TruePosQA < row.TruePosMV-1 {
			t.Errorf("%s: QA TP %d < MV TP %d", row.Variant, row.TruePosQA, row.TruePosMV)
		}
	}
}

func TestFigure4LatencyShape(t *testing.T) {
	r, err := Figure4(quick())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]JoinAccuracy{}
	for _, row := range r.Rows {
		byName[row.Variant] = row
	}
	simple, naive10 := byName["Simple"], byName["Naive 10"]
	if len(simple.TrialP100) == 0 || len(naive10.TrialP100) == 0 {
		t.Fatal("missing latency data")
	}
	// Batching reduces latency (paper Fig. 4).
	if naive10.TrialP100[0] >= simple.TrialP100[0] {
		t.Errorf("naive-10 makespan %.3f ≥ simple %.3f", naive10.TrialP100[0], simple.TrialP100[0])
	}
	// Straggler tail: the last 5%% of work takes a disproportionate
	// share of wall clock (P95 well under P100).
	if simple.TrialP95[0]/simple.TrialP100[0] > 0.8 {
		t.Errorf("no straggler tail: P95/P100 = %.2f", simple.TrialP95[0]/simple.TrialP100[0])
	}
	// Evening trial (trial 2) is slower than morning (time-of-day).
	if len(simple.TrialP100) > 1 && simple.TrialP100[1] <= simple.TrialP100[0] {
		t.Errorf("evening trial not slower: %.3f vs %.3f", simple.TrialP100[1], simple.TrialP100[0])
	}
}

func TestWorkerRegressionNoStrongEffect(t *testing.T) {
	r, err := WorkerAccuracyRegression(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Paper §3.3.3: R² = 0.028 — work volume explains almost none of
	// the accuracy variance.
	if r.Fit.R2 > 0.25 {
		t.Errorf("R2 = %.3f, want small (no strong effect)", r.Fit.R2)
	}
	if r.Workers < 10 {
		t.Errorf("too few workers regressed: %d", r.Workers)
	}
}

func TestTable2FeatureFiltering(t *testing.T) {
	r, err := Table2(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 interfaces × 2 trials)", len(r.Rows))
	}
	nonMatches := r.N*r.N - r.N
	for _, row := range r.Rows {
		// Feature filtering saves well over half the comparisons
		// (paper: ~600/870) with only a few errors (paper: 1–5).
		if float64(row.SavedComparisons)/float64(nonMatches) < 0.5 {
			t.Errorf("trial %d combined=%v: saved only %d/%d", row.Trial, row.Combined, row.SavedComparisons, nonMatches)
		}
		if row.Errors > r.N/3 {
			t.Errorf("trial %d combined=%v: %d errors", row.Trial, row.Combined, row.Errors)
		}
	}
}

func TestTable3HairCausesErrors(t *testing.T) {
	r, err := Table3(quick())
	if err != nil {
		t.Fatal(err)
	}
	var errWithoutHair, errWithoutGender, savedWithoutGender, savedWithoutHair int
	for _, row := range r.Rows {
		switch row.Omitted {
		case "hair":
			errWithoutHair = row.Errors
			savedWithoutHair = row.SavedComparisons
		case "gender":
			errWithoutGender = row.Errors
			savedWithoutGender = row.SavedComparisons
		}
	}
	// Paper Table 3: dropping hair removes the errors; dropping gender
	// costs the most savings.
	if errWithoutHair > errWithoutGender {
		t.Errorf("omitting hair left %d errors vs %d omitting gender", errWithoutHair, errWithoutGender)
	}
	if savedWithoutGender >= savedWithoutHair {
		t.Errorf("gender should be the most selective feature (saved %d w/o gender vs %d w/o hair)",
			savedWithoutGender, savedWithoutHair)
	}
}

func TestTable4KappaOrdering(t *testing.T) {
	r, err := Table4(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.SampleFrac != 1 {
			continue
		}
		// Paper Table 4: gender agreement far exceeds hair agreement.
		if row.Gender <= row.Hair {
			t.Errorf("trial %d combined=%v: gender κ %.2f ≤ hair κ %.2f", row.Trial, row.Combined, row.Gender, row.Hair)
		}
	}
	// Sampled κ tracks the full κ.
	full := map[string]Table4Row{}
	for _, row := range r.Rows {
		key := sampleKey(row)
		if row.SampleFrac == 1 {
			full[key] = row
		}
	}
	for _, row := range r.Rows {
		if row.SampleFrac == 1 {
			continue
		}
		f := full[sampleKey(row)]
		if abs(row.Gender-f.Gender) > 0.25 {
			t.Errorf("sampled gender κ %.2f far from full %.2f", row.Gender, f.Gender)
		}
	}
}

func sampleKey(r Table4Row) string {
	if r.Combined {
		return "c" + string(rune('0'+r.Trial))
	}
	return "s" + string(rune('0'+r.Trial))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFeatureSelectionDropsHair(t *testing.T) {
	r, err := FeatureSelection(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.Verdicts {
		switch v.Feature {
		case "gender":
			if !v.Kept {
				t.Errorf("gender dropped: %+v", v)
			}
		case "hair":
			if v.Kept {
				t.Errorf("hair kept despite ambiguity/errors: %+v", v)
			}
		}
	}
}

func TestCompareBatchingRefusal(t *testing.T) {
	r, err := SquareCompareBatching(quick())
	if err != nil {
		t.Fatal(err)
	}
	byS := map[int]CompareBatchingRow{}
	for _, row := range r.Rows {
		byS[row.GroupSize] = row
	}
	if !byS[5].Completed || byS[5].Tau < 0.99 {
		t.Errorf("S=5: %+v, want tau 1.0", byS[5])
	}
	if !byS[10].Completed || byS[10].Tau < 0.99 {
		t.Errorf("S=10: %+v, want tau 1.0", byS[10])
	}
	// S=10 is slower than S=5 (paper: 0.3h vs >1h).
	if byS[10].Makespan <= byS[5].Makespan {
		t.Errorf("S=10 makespan %.3f ≤ S=5 %.3f", byS[10].Makespan, byS[5].Makespan)
	}
	if byS[20].Completed {
		t.Error("S=20 should be refused (paper: never completed)")
	}
}

func TestRateBatchingInsensitive(t *testing.T) {
	r, err := SquareRateBatching(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Strong but imperfect correlation, insensitive to batch size.
	if r.MeanTau < 0.6 || r.MeanTau > 0.98 {
		t.Errorf("mean tau = %.3f, want paper-like 0.7–0.95 band", r.MeanTau)
	}
	for _, row := range r.Rows {
		if row.Tau < r.MeanTau-0.25 {
			t.Errorf("batch %d collapsed: tau %.3f vs mean %.3f", row.BatchSize, row.Tau, r.MeanTau)
		}
	}
}

func TestRateGranularityStable(t *testing.T) {
	r, err := SquareRateGranularity(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.StdTau > 0.1 {
		t.Errorf("tau std = %.3f, want stable across dataset sizes", r.StdTau)
	}
}

func TestFigure6Monotonicity(t *testing.T) {
	r, err := Figure6(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// κ falls monotonically Q1→Q5 (allow tiny slack between adjacent
	// queries); τ falls from Q2→Q5.
	for i := 1; i < 5; i++ {
		if r.Rows[i].Kappa > r.Rows[i-1].Kappa+0.05 {
			t.Errorf("κ not decreasing: %s %.3f -> %s %.3f",
				r.Rows[i-1].Query, r.Rows[i-1].Kappa, r.Rows[i].Query, r.Rows[i].Kappa)
		}
	}
	for i := 2; i < 5; i++ {
		if r.Rows[i].Tau > r.Rows[i-1].Tau+0.05 {
			t.Errorf("τ not decreasing: %s %.3f -> %s %.3f",
				r.Rows[i-1].Query, r.Rows[i-1].Tau, r.Rows[i].Query, r.Rows[i].Tau)
		}
	}
	// Q4 agreement beats Q5's random agreement (paper: "workers will
	// apply and agree on some preconceived sort order").
	if r.Rows[3].Kappa <= r.Rows[4].Kappa {
		t.Errorf("Saturn κ %.3f ≤ random κ %.3f", r.Rows[3].Kappa, r.Rows[4].Kappa)
	}
	// Q5 is ≈ random.
	if abs(r.Rows[4].Kappa) > 0.1 || abs(r.Rows[4].Tau) > 0.35 {
		t.Errorf("random query not random: κ=%.3f τ=%.3f", r.Rows[4].Kappa, r.Rows[4].Tau)
	}
	// Samples track the full metrics.
	for _, row := range r.Rows {
		if abs(row.SampleKappa-row.Kappa) > 0.15 {
			t.Errorf("%s: sample κ %.3f far from %.3f", row.Query, row.SampleKappa, row.Kappa)
		}
	}
}

func TestFigure7WindowWins(t *testing.T) {
	r, err := Figure7(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Compare is perfect but expensive; Rate cheap but imperfect.
	if r.CompareTau < 0.99 {
		t.Errorf("compare tau = %.3f", r.CompareTau)
	}
	if r.RateTau >= r.CompareTau {
		t.Errorf("rate tau %.3f should trail compare", r.RateTau)
	}
	if r.RateHITs >= r.CompareHITs {
		t.Errorf("rate HITs %d ≥ compare HITs %d", r.RateHITs, r.CompareHITs)
	}
	// The offset window reaches high tau within the iteration budget
	// and at less cost than Compare (paper: τ>0.95 in <30 HITs, τ=1 in
	// half of Compare's HITs).
	w6 := r.HITsToTau("Window 6", 0.95)
	if w6 < 0 {
		t.Fatalf("Window 6 never reached 0.95: %v", r.Series["Window 6"])
	}
	if r.RateHITs+w6 >= r.CompareHITs {
		t.Errorf("Window 6 cost %d ≥ compare %d", r.RateHITs+w6, r.CompareHITs)
	}
	// Window 6 (offset) beats Window 5 (divisor) on this dataset size
	// when t divides N.
	if r.N%5 == 0 && r.FinalTau("Window 6") < r.FinalTau("Window 5")-0.01 {
		t.Errorf("Window 6 final %.3f < Window 5 final %.3f", r.FinalTau("Window 6"), r.FinalTau("Window 5"))
	}
	// Every scheme improves on the rating-only start.
	for name, series := range r.Series {
		if len(series) > 0 && series[len(series)-1] < r.RateTau-0.02 {
			t.Errorf("%s degraded below the rate seed: %.3f < %.3f", name, series[len(series)-1], r.RateTau)
		}
	}
}

func TestAnimalsHybridImproves(t *testing.T) {
	r, err := AnimalsHybrid(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.EndTau <= r.StartTau {
		t.Errorf("hybrid did not improve: %.3f -> %.3f", r.StartTau, r.EndTau)
	}
	if r.EndTau < 0.88 {
		t.Errorf("end tau = %.3f, want ≥0.88 (paper reaches 0.90)", r.EndTau)
	}
}

func TestTable5Reduction(t *testing.T) {
	r, err := Table5(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.Reduction() < 4 {
		t.Errorf("reduction = %.1fx, want ≥4x even at quick scale", r.Reduction())
	}
	// Filter selectivity ≈ 55%.
	frac := float64(r.FilteredScenes) / float64(r.Scenes)
	if frac < 0.4 || frac > 0.7 {
		t.Errorf("filter selectivity = %.2f, want ≈0.55", frac)
	}
	byOpt := map[string]int{}
	for _, row := range r.Rows {
		byOpt[row.Optimization] = row.HITs
	}
	// Smart 5x5 cheapest filtered join; unfiltered Simple most
	// expensive overall.
	if byOpt["Filter + Smart 5x5"] >= byOpt["Filter + Naive"] {
		t.Error("smart 5x5 should beat naive batching")
	}
	if byOpt["No Filter + Simple"] <= byOpt["Filter + Simple"] {
		t.Error("filtering should cut simple join HITs")
	}
	if byOpt["Rate"] >= byOpt["Compare"] {
		t.Error("rate should be cheaper than compare")
	}
}

func TestCostNarrative(t *testing.T) {
	r, err := CostNarrative(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !(r.UnfilteredDollars > r.FilteredDollars && r.FilteredDollars > r.BatchedDollars) {
		t.Errorf("cost walk-down broken: %.2f -> %.2f -> %.2f",
			r.UnfilteredDollars, r.FilteredDollars, r.BatchedDollars)
	}
	// Order-of-magnitude total reduction (paper: 67.50/2.70 = 25x).
	if r.UnfilteredDollars/r.BatchedDollars < 8 {
		t.Errorf("total reduction = %.1fx, want ≥8x", r.UnfilteredDollars/r.BatchedDollars)
	}
}

// TestFullScaleTable5 runs the paper-scale end-to-end pipeline; skipped
// with -short.
func TestFullScaleTable5(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run")
	}
	r, err := Table5(Config{Seed: 42, Scale: Full})
	if err != nil {
		t.Fatal(err)
	}
	if r.Reduction() < 10 {
		t.Errorf("full-scale reduction = %.1fx, want ≥10x (paper 14.5x)", r.Reduction())
	}
	t.Logf("full-scale Table 5: %d unoptimized vs %d optimized (%.1fx)",
		r.TotalUnoptimized, r.TotalOptimized, r.Reduction())
}

// TestFullScaleRateTau verifies the headline Rate calibration.
func TestFullScaleRateTau(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run")
	}
	r, err := SquareRateBatching(Config{Seed: 42, Scale: Full})
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanTau < 0.7 || r.MeanTau > 0.86 {
		t.Errorf("full-scale rate tau = %.3f, want ≈0.78 (paper)", r.MeanTau)
	}
}
