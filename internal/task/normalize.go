package task

import (
	"fmt"
	"strings"
)

// Normalizer canonicalizes free-text worker responses before combination
// so that e.g. "Grey  Wolf" and "grey wolf" count as the same answer
// (paper §2.2: "which makes the combiner more effective at aggregating
// responses").
type Normalizer func(string) string

// LowercaseSingleSpace is the paper's normalizer: lower-case the text and
// collapse runs of whitespace to single spaces, trimming the ends.
func LowercaseSingleSpace(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// TrimSpace trims leading and trailing whitespace only.
func TrimSpace(s string) string { return strings.TrimSpace(s) }

// Identity returns the input unchanged.
func Identity(s string) string { return s }

// normalizers is the registry of named normalizers referenced from task
// definitions and from the TASK DSL.
var normalizers = map[string]Normalizer{
	"":                      Identity,
	"identity":              Identity,
	"none":                  Identity,
	"trim":                  TrimSpace,
	"lowercasesinglespace":  LowercaseSingleSpace,
	"lowercase_singlespace": LowercaseSingleSpace,
}

// LookupNormalizer resolves a normalizer by name (case-insensitive).
func LookupNormalizer(name string) (Normalizer, error) {
	n, ok := normalizers[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("task: unknown normalizer %q", name)
	}
	return n, nil
}
