package task

import (
	"strings"
	"testing"

	"qurk/internal/relation"
)

func celebTuple(t *testing.T) relation.Tuple {
	t.Helper()
	s := relation.MustSchema(
		relation.Column{Name: "name", Kind: relation.KindText},
		relation.Column{Name: "img", Kind: relation.KindURL},
	)
	return relation.MustTuple(s, relation.Text("Brad"), relation.URL("http://x/brad.jpg"))
}

func TestPromptRender(t *testing.T) {
	p, err := NewPrompt("<img src='%s'> Is %s a woman?", "img", "name")
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Render(celebTuple(t))
	if err != nil {
		t.Fatal(err)
	}
	want := "<img src='http://x/brad.jpg'> Is Brad a woman?"
	if out != want {
		t.Errorf("Render = %q, want %q", out, want)
	}
}

func TestPromptValidation(t *testing.T) {
	if _, err := NewPrompt("%s %s", "img"); err == nil {
		t.Error("placeholder/field mismatch accepted")
	}
	if _, err := NewPrompt("no placeholders"); err != nil {
		t.Errorf("zero-placeholder prompt rejected: %v", err)
	}
	p := MustPrompt("<img src='%s'>", "missing")
	if _, err := p.Render(celebTuple(t)); err == nil {
		t.Error("render with missing field should error")
	}
}

func TestFilterTaskValidate(t *testing.T) {
	f := &Filter{
		Name:     "isFemale",
		Prompt:   MustPrompt("<img src='%s'> Is the person a woman?", "img"),
		YesText:  "Yes",
		NoText:   "No",
		Combiner: "MajorityVote",
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.TaskType() != FilterType || f.TaskName() != "isFemale" {
		t.Error("metadata wrong")
	}
	bad := &Filter{Prompt: MustPrompt("x")}
	if err := bad.Validate(); err == nil {
		t.Error("unnamed filter accepted")
	}
}

func TestGenerativeTaskValidate(t *testing.T) {
	g := &Generative{
		Name:   "animalInfo",
		Prompt: MustPrompt("<img src='%s'> What is the common name and species?", "img"),
		Fields: []Field{
			{Name: "common", Response: TextInput("Common name"), Combiner: "MajorityVote", Normalizer: "LowercaseSingleSpace"},
			{Name: "species", Response: TextInput("Species"), Combiner: "MajorityVote", Normalizer: "LowercaseSingleSpace"},
		},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.IsCategorical() {
		t.Error("text fields reported as categorical")
	}
	if _, ok := g.Field("common"); !ok {
		t.Error("Field lookup failed")
	}
	if _, ok := g.Field("nope"); ok {
		t.Error("missing field found")
	}

	gender := &Generative{
		Name:   "gender",
		Prompt: MustPrompt("<img src='%s'> What is this person's gender?", "img"),
		Fields: []Field{
			{Name: "gender", Response: Radio("Gender", "Male", "Female", "UNKNOWN"), Combiner: "MajorityVote"},
		},
	}
	if err := gender.Validate(); err != nil {
		t.Fatal(err)
	}
	if !gender.IsCategorical() {
		t.Error("radio-only task not categorical")
	}
	if !gender.Fields[0].Response.AllowsUnknown() {
		t.Error("UNKNOWN option not detected")
	}

	for _, bad := range []*Generative{
		{Name: "x", Prompt: MustPrompt("p")},                                                          // no fields
		{Name: "x", Prompt: MustPrompt("p"), Fields: []Field{{Name: ""}}},                             // empty field name
		{Name: "x", Prompt: MustPrompt("p"), Fields: []Field{{Name: "a"}, {Name: "a"}}},               // dup
		{Name: "x", Prompt: MustPrompt("p"), Fields: []Field{{Name: "a", Response: Radio("r")}}},      // radio no options
		{Name: "x", Prompt: MustPrompt("p"), Fields: []Field{{Name: "a", Response: Radio("r", "o")}}}, // radio 1 option
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid generative accepted: %+v", bad)
		}
	}
}

func TestRankTaskQuestions(t *testing.T) {
	r := &Rank{
		Name:               "squareSorter",
		SingularName:       "square",
		PluralName:         "squares",
		OrderDimensionName: "area",
		LeastName:          "smallest",
		MostName:           "largest",
		HTML:               MustPrompt("<img src='%s' class=lgImg>", "img"),
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := r.CompareQuestion(); !strings.Contains(got, "smallest area") || !strings.Contains(got, "largest area") {
		t.Errorf("CompareQuestion = %q", got)
	}
	if got := r.RateQuestion(7); !strings.Contains(got, "1 (smallest)") || !strings.Contains(got, "7 (largest)") {
		t.Errorf("RateQuestion = %q", got)
	}
	bad := &Rank{Name: "x", HTML: MustPrompt("p")}
	if err := bad.Validate(); err == nil {
		t.Error("rank without names accepted")
	}
}

func TestEquiJoinTaskValidate(t *testing.T) {
	e := &EquiJoin{
		Name:         "samePerson",
		SingularName: "celebrity",
		PluralName:   "celebrities",
		LeftPreview:  MustPrompt("<img src='%s' class=smImg>", "img"),
		LeftNormal:   MustPrompt("<img src='%s' class=lgImg>", "img"),
		RightPreview: MustPrompt("<img src='%s' class=smImg>", "img"),
		RightNormal:  MustPrompt("<img src='%s' class=lgImg>", "img"),
		Combiner:     "MajorityVote",
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.PairQuestion(), "celebrity") {
		t.Errorf("PairQuestion = %q", e.PairQuestion())
	}
	bad := &EquiJoin{Name: "x", LeftPreview: Prompt{Format: "%s"}}
	if err := bad.Validate(); err == nil {
		t.Error("bad equijoin accepted")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	f := &Filter{Name: "isFemale", Prompt: MustPrompt("q")}
	if err := r.Register(f); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(&Filter{Name: "ISFEMALE", Prompt: MustPrompt("q")}); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
	got, err := r.Lookup("isfemale")
	if err != nil || got.TaskName() != "isFemale" {
		t.Errorf("Lookup = %v, %v", got, err)
	}
	if _, err := r.Lookup("nope"); err == nil {
		t.Error("missing lookup should error")
	}
	if err := r.Register(&Filter{Name: "", Prompt: MustPrompt("q")}); err == nil {
		t.Error("invalid task registered")
	}
	if len(r.Names()) != 1 {
		t.Errorf("Names = %v", r.Names())
	}
}

func TestNormalizers(t *testing.T) {
	n, err := LookupNormalizer("LowercaseSingleSpace")
	if err != nil {
		t.Fatal(err)
	}
	if got := n("  Grey \t Wolf  "); got != "grey wolf" {
		t.Errorf("normalize = %q", got)
	}
	trim, _ := LookupNormalizer("trim")
	if got := trim("  A B  "); got != "A B" {
		t.Errorf("trim = %q", got)
	}
	id, _ := LookupNormalizer("")
	if got := id(" X "); got != " X " {
		t.Errorf("identity = %q", got)
	}
	if _, err := LookupNormalizer("bogus"); err == nil {
		t.Error("bogus normalizer accepted")
	}
}
