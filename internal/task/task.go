// Package task implements Qurk's Task templates (paper §2.1–§2.4): the
// pre-defined UDF kinds — Filter, Generative, Rank, EquiJoin — that a
// query references, together with prompt rendering and response
// normalization. A task describes *how to ask the crowd* about tuples;
// HIT compilation and batching live in internal/hit.
package task

import (
	"fmt"
	"strings"

	"qurk/internal/relation"
)

// Type identifies a task template kind.
type Type uint8

const (
	// FilterType is a yes/no question per tuple (paper §2.1).
	FilterType Type = iota
	// GenerativeType asks workers to produce field values (paper §2.2),
	// either free text or a constrained Radio choice (feature
	// extraction, §2.4).
	GenerativeType
	// RankType supplies the labels for sort interfaces (paper §2.3).
	RankType
	// EquiJoinType supplies the labels and previews for join interfaces
	// (paper §2.4).
	EquiJoinType
)

// String returns the paper's name for the type.
func (t Type) String() string {
	switch t {
	case FilterType:
		return "Filter"
	case GenerativeType:
		return "Generative"
	case RankType:
		return "Rank"
	case EquiJoinType:
		return "EquiJoin"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Task is the common interface over the four template kinds.
type Task interface {
	// TaskName is the UDF name referenced in queries (e.g. "isFemale").
	TaskName() string
	// TaskType reports the template kind.
	TaskType() Type
	// Validate checks the template for structural problems.
	Validate() error
}

// Prompt is an HTML snippet with positional %s verbs substituted from
// tuple fields, mirroring the paper's
//
//	Prompt: "<img src='%s'>", tuple[field]
//
// syntax. Fields are tuple column names resolved at render time.
type Prompt struct {
	// Format is the HTML with %s placeholders.
	Format string
	// Fields are the tuple columns substituted, in order.
	Fields []string
}

// NewPrompt validates that the number of %s verbs matches fields.
func NewPrompt(format string, fields ...string) (Prompt, error) {
	p := Prompt{Format: format, Fields: fields}
	if err := p.Validate(); err != nil {
		return Prompt{}, err
	}
	return p, nil
}

// MustPrompt is NewPrompt that panics on error, for literals in tests
// and examples.
func MustPrompt(format string, fields ...string) Prompt {
	p, err := NewPrompt(format, fields...)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate checks that the placeholder count matches the field count.
func (p Prompt) Validate() error {
	n := strings.Count(p.Format, "%s")
	if n != len(p.Fields) {
		return fmt.Errorf("task: prompt has %d %%s placeholders but %d fields", n, len(p.Fields))
	}
	return nil
}

// Render substitutes the tuple's field values into the format.
func (p Prompt) Render(t relation.Tuple) (string, error) {
	args := make([]any, len(p.Fields))
	for i, f := range p.Fields {
		v, ok := t.Get(f)
		if !ok {
			return "", fmt.Errorf("task: prompt field %q not in tuple schema %s", f, t.Schema())
		}
		args[i] = v.Text()
	}
	return fmt.Sprintf(p.Format, args...), nil
}

// Filter is the paper's Filter task: a Prompt plus Yes/No button labels
// and a combiner that merges multiple worker responses.
type Filter struct {
	Name     string
	Prompt   Prompt
	YesText  string
	NoText   string
	Combiner string // combiner name, e.g. "MajorityVote" or "QualityAdjust"
}

// TaskName implements Task.
func (f *Filter) TaskName() string { return f.Name }

// TaskType implements Task.
func (f *Filter) TaskType() Type { return FilterType }

// Validate implements Task.
func (f *Filter) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("task: filter needs a name")
	}
	if err := f.Prompt.Validate(); err != nil {
		return fmt.Errorf("task %s: %w", f.Name, err)
	}
	return nil
}

// ResponseKind distinguishes free-text from constrained responses in
// generative tasks.
type ResponseKind uint8

const (
	// TextResponse is a free-text input requiring a Normalizer.
	TextResponse ResponseKind = iota
	// RadioResponse is a constrained categorical choice; it may include
	// UNKNOWN (paper §2.4 feature extraction).
	RadioResponse
)

// Response describes how a generative field collects input.
type Response struct {
	Kind ResponseKind
	// Label is the input's on-screen label (e.g. "Common name").
	Label string
	// Options are the radio choices; only for RadioResponse. The
	// special option "UNKNOWN" enables the wildcard value.
	Options []string
}

// TextInput builds a free-text response.
func TextInput(label string) Response { return Response{Kind: TextResponse, Label: label} }

// Radio builds a constrained categorical response.
func Radio(label string, options ...string) Response {
	return Response{Kind: RadioResponse, Label: label, Options: options}
}

// AllowsUnknown reports whether UNKNOWN is among the radio options.
func (r Response) AllowsUnknown() bool {
	for _, o := range r.Options {
		if strings.EqualFold(o, "UNKNOWN") {
			return true
		}
	}
	return false
}

// Field is one output field of a generative task.
type Field struct {
	Name       string
	Response   Response
	Combiner   string
	Normalizer string // normalizer name; "" means none
}

// Generative is the paper's Generative task: a prompt plus one or more
// output fields, each with its own response type, combiner, and
// normalizer.
type Generative struct {
	Name   string
	Prompt Prompt
	Fields []Field
}

// TaskName implements Task.
func (g *Generative) TaskName() string { return g.Name }

// TaskType implements Task.
func (g *Generative) TaskType() Type { return GenerativeType }

// Validate implements Task.
func (g *Generative) Validate() error {
	if g.Name == "" {
		return fmt.Errorf("task: generative needs a name")
	}
	if err := g.Prompt.Validate(); err != nil {
		return fmt.Errorf("task %s: %w", g.Name, err)
	}
	if len(g.Fields) == 0 {
		return fmt.Errorf("task %s: generative needs at least one field", g.Name)
	}
	seen := map[string]bool{}
	for _, f := range g.Fields {
		if f.Name == "" {
			return fmt.Errorf("task %s: field with empty name", g.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("task %s: duplicate field %q", g.Name, f.Name)
		}
		seen[f.Name] = true
		if f.Response.Kind == RadioResponse && len(f.Response.Options) < 2 {
			return fmt.Errorf("task %s field %s: radio needs ≥2 options", g.Name, f.Name)
		}
	}
	return nil
}

// Field returns the named field spec.
func (g *Generative) Field(name string) (Field, bool) {
	for _, f := range g.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// IsCategorical reports whether every field is a radio response — a
// requirement for κ-based ambiguity detection (paper §3.2: "Qurk
// currently only supports detecting ambiguity for categorical features").
func (g *Generative) IsCategorical() bool {
	for _, f := range g.Fields {
		if f.Response.Kind != RadioResponse {
			return false
		}
	}
	return true
}

// Rank is the paper's Rank task (§2.3): the label set that populates
// both the comparison and the rating interfaces for ORDER BY.
type Rank struct {
	Name               string
	SingularName       string // "square"
	PluralName         string // "squares"
	OrderDimensionName string // "area"
	LeastName          string // "smallest"
	MostName           string // "largest"
	HTML               Prompt // per-item rendering
	Combiner           string
}

// TaskName implements Task.
func (r *Rank) TaskName() string { return r.Name }

// TaskType implements Task.
func (r *Rank) TaskType() Type { return RankType }

// Validate implements Task.
func (r *Rank) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("task: rank needs a name")
	}
	if r.SingularName == "" || r.PluralName == "" || r.OrderDimensionName == "" {
		return fmt.Errorf("task %s: rank needs singular/plural/dimension names", r.Name)
	}
	if err := r.HTML.Validate(); err != nil {
		return fmt.Errorf("task %s: %w", r.Name, err)
	}
	return nil
}

// CompareQuestion renders the comparison-interface question text, e.g.
// "Order these squares from smallest area to largest area."
func (r *Rank) CompareQuestion() string {
	return fmt.Sprintf("Order these %s from %s %s to %s %s.",
		r.PluralName, r.LeastName, r.OrderDimensionName, r.MostName, r.OrderDimensionName)
}

// RateQuestion renders the rating-interface question text, e.g.
// "Rate this square by area on a scale of 1 (smallest) to 7 (largest)."
func (r *Rank) RateQuestion(scale int) string {
	return fmt.Sprintf("Rate this %s by %s on a scale of 1 (%s) to %d (%s).",
		r.SingularName, r.OrderDimensionName, r.LeastName, scale, r.MostName)
}

// EquiJoin is the paper's EquiJoin task (§2.4): labels plus preview and
// full-size renderings for the two sides of a join comparison.
type EquiJoin struct {
	Name         string
	SingularName string
	PluralName   string
	LeftPreview  Prompt // small rendering (smart batch grid)
	LeftNormal   Prompt // full-size rendering (simple/naive, hover)
	RightPreview Prompt
	RightNormal  Prompt
	Combiner     string
}

// TaskName implements Task.
func (e *EquiJoin) TaskName() string { return e.Name }

// TaskType implements Task.
func (e *EquiJoin) TaskType() Type { return EquiJoinType }

// Validate implements Task.
func (e *EquiJoin) Validate() error {
	if e.Name == "" {
		return fmt.Errorf("task: equijoin needs a name")
	}
	for _, p := range []struct {
		n string
		p Prompt
	}{
		{"LeftPreview", e.LeftPreview}, {"LeftNormal", e.LeftNormal},
		{"RightPreview", e.RightPreview}, {"RightNormal", e.RightNormal},
	} {
		if err := p.p.Validate(); err != nil {
			return fmt.Errorf("task %s %s: %w", e.Name, p.n, err)
		}
	}
	return nil
}

// PairQuestion renders the simple/naive join question, e.g.
// "Are these two images the same celebrity?"
func (e *EquiJoin) PairQuestion() string {
	single := e.SingularName
	if single == "" {
		single = "item"
	}
	return fmt.Sprintf("Are these two images the same %s?", single)
}

// Registry maps task names to definitions; a query's UDF references are
// resolved against it during planning.
type Registry struct {
	tasks map[string]Task
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{tasks: make(map[string]Task)} }

// Register validates and adds a task; duplicate names are an error.
func (r *Registry) Register(t Task) error {
	if err := t.Validate(); err != nil {
		return err
	}
	key := strings.ToLower(t.TaskName())
	if _, dup := r.tasks[key]; dup {
		return fmt.Errorf("task: duplicate task %q", t.TaskName())
	}
	r.tasks[key] = t
	return nil
}

// MustRegister panics on error; for examples.
func (r *Registry) MustRegister(t Task) {
	if err := r.Register(t); err != nil {
		panic(err)
	}
}

// Lookup finds a task by name (case-insensitive).
func (r *Registry) Lookup(name string) (Task, error) {
	t, ok := r.tasks[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("task: unknown task %q", name)
	}
	return t, nil
}

// Names returns registered task names (unsorted).
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.tasks))
	for n := range r.tasks {
		out = append(out, n)
	}
	return out
}
