package task

import "fmt"

// Bind rebinds a prompt's field references through a formal-parameter →
// actual-column mapping. The TASK DSL writes prompts against formal
// parameters — Prompt: "<img src='%s'>", tuple[field] — and the query
// supplies actual columns at call sites — isFemale(c.img) — so the
// planner binds `field` → `c.img` before HIT generation.
// Fields absent from the mapping pass through unchanged.
func (p Prompt) Bind(mapping map[string]string) Prompt {
	out := Prompt{Format: p.Format, Fields: make([]string, len(p.Fields))}
	for i, f := range p.Fields {
		if actual, ok := mapping[f]; ok {
			out.Fields[i] = actual
		} else {
			out.Fields[i] = f
		}
	}
	return out
}

// Bind clones a task with every prompt rebound through the mapping.
func Bind(t Task, mapping map[string]string) (Task, error) {
	switch tt := t.(type) {
	case *Filter:
		c := *tt
		c.Prompt = c.Prompt.Bind(mapping)
		return &c, nil
	case *Generative:
		c := *tt
		c.Prompt = c.Prompt.Bind(mapping)
		c.Fields = append([]Field(nil), tt.Fields...)
		return &c, nil
	case *Rank:
		c := *tt
		c.HTML = c.HTML.Bind(mapping)
		return &c, nil
	case *EquiJoin:
		c := *tt
		c.LeftPreview = c.LeftPreview.Bind(mapping)
		c.LeftNormal = c.LeftNormal.Bind(mapping)
		c.RightPreview = c.RightPreview.Bind(mapping)
		c.RightNormal = c.RightNormal.Bind(mapping)
		return &c, nil
	default:
		return nil, fmt.Errorf("task: cannot bind task type %T", t)
	}
}
