package task

import "testing"

func TestBindAllTaskTypes(t *testing.T) {
	mapping := map[string]string{"f": "c.img", "f2": "p.img"}

	f := &Filter{Name: "x", Prompt: MustPrompt("<img src='%s'>", "f")}
	bf, err := Bind(f, mapping)
	if err != nil {
		t.Fatal(err)
	}
	if bf.(*Filter).Prompt.Fields[0] != "c.img" || f.Prompt.Fields[0] != "f" {
		t.Error("filter bind wrong or mutated original")
	}

	g := &Generative{
		Name:   "x",
		Prompt: MustPrompt("<img src='%s'>", "f"),
		Fields: []Field{{Name: "v", Response: Radio("V", "a", "b")}},
	}
	bg, err := Bind(g, mapping)
	if err != nil {
		t.Fatal(err)
	}
	if bg.(*Generative).Prompt.Fields[0] != "c.img" {
		t.Error("generative bind wrong")
	}
	// Field slice must be copied, not aliased.
	bg.(*Generative).Fields[0].Name = "mutated"
	if g.Fields[0].Name != "v" {
		t.Error("bind aliased field slice")
	}

	r := &Rank{
		Name: "x", SingularName: "s", PluralName: "p", OrderDimensionName: "d",
		HTML: MustPrompt("<img src='%s'>", "f"),
	}
	br, err := Bind(r, mapping)
	if err != nil {
		t.Fatal(err)
	}
	if br.(*Rank).HTML.Fields[0] != "c.img" {
		t.Error("rank bind wrong")
	}

	e := &EquiJoin{
		Name:         "x",
		LeftPreview:  MustPrompt("<img src='%s'>", "f"),
		LeftNormal:   MustPrompt("<img src='%s'>", "f"),
		RightPreview: MustPrompt("<img src='%s'>", "f2"),
		RightNormal:  MustPrompt("<img src='%s'>", "f2"),
	}
	be, err := Bind(e, mapping)
	if err != nil {
		t.Fatal(err)
	}
	ej := be.(*EquiJoin)
	if ej.LeftNormal.Fields[0] != "c.img" || ej.RightNormal.Fields[0] != "p.img" {
		t.Errorf("equijoin bind: %v / %v", ej.LeftNormal.Fields, ej.RightNormal.Fields)
	}

	// Unmapped fields pass through.
	pp := MustPrompt("<img src='%s'>", "other").Bind(mapping)
	if pp.Fields[0] != "other" {
		t.Error("unmapped field changed")
	}

	// Unknown task type errors.
	if _, err := Bind(badTask{}, mapping); err == nil {
		t.Error("unknown task type accepted")
	}
}

type badTask struct{}

func (badTask) TaskName() string { return "bad" }
func (badTask) TaskType() Type   { return Type(99) }
func (badTask) Validate() error  { return nil }

func TestTypeStrings(t *testing.T) {
	for typ, want := range map[Type]string{
		FilterType:     "Filter",
		GenerativeType: "Generative",
		RankType:       "Rank",
		EquiJoinType:   "EquiJoin",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q", typ, typ.String())
		}
	}
	if Type(200).String() == "" {
		t.Error("unknown type should still render")
	}
}

func TestPairQuestionDefault(t *testing.T) {
	e := &EquiJoin{}
	if got := e.PairQuestion(); got != "Are these two images the same item?" {
		t.Errorf("default pair question = %q", got)
	}
}
