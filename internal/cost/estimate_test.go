package cost

import (
	"math"
	"testing"
)

func TestCeilDivAndBatchHITs(t *testing.T) {
	cases := []struct{ n, d, want int }{
		{0, 5, 0}, {-3, 5, 0}, {1, 5, 1}, {5, 5, 1}, {6, 5, 2}, {30, 4, 8}, {7, 0, 7},
	}
	for _, c := range cases {
		if got := CeilDiv(c.n, c.d); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.n, c.d, got, c.want)
		}
	}
	if BatchHITs(23, 5) != 5 {
		t.Errorf("BatchHITs(23,5) = %d", BatchHITs(23, 5))
	}
}

func TestJoinHITFormulas(t *testing.T) {
	// Paper §3.1: |R||S| simple, /b naive, /(rs) smart.
	if p := JoinPairs(30, 30, 1); p != 900 {
		t.Fatalf("pairs = %d", p)
	}
	if h := SimpleJoinHITs(900); h != 900 {
		t.Errorf("simple = %d", h)
	}
	if h := NaiveJoinHITs(900, 5); h != 180 {
		t.Errorf("naive = %d", h)
	}
	if h := SmartJoinHITs(30, 30, 5, 5, 1); h != 36 {
		t.Errorf("smart 5×5 = %d", h)
	}
	if h := SmartJoinHITs(30, 30, 3, 3, 1); h != 100 {
		t.Errorf("smart 3×3 = %d", h)
	}
	// A 50% pass fraction barely empties any 25-cell block...
	if h := SmartJoinHITs(30, 30, 5, 5, 0.5); h != 36 {
		t.Errorf("smart at f=0.5 = %d, want 36 (blocks stay occupied)", h)
	}
	// ...while a strong prune empties many.
	strong := SmartJoinHITs(60, 60, 5, 5, 1.0/24)
	if strong >= 144 || strong < 1 {
		t.Errorf("smart at f=1/24 over 60×60 = %d, want < 144", strong)
	}
	// Pair estimates under a pass fraction round up and never zero out.
	if p := JoinPairs(4, 4, 1.0/24); p != 1 {
		t.Errorf("tiny filtered pairs = %d", p)
	}
}

func TestSortHITFormulas(t *testing.T) {
	if h := RateSortHITs(40, 5); h != 8 {
		t.Errorf("rate = %d", h)
	}
	if h := HybridSortHITs(40, 5, 20); h != 28 {
		t.Errorf("hybrid = %d", h)
	}
	// §4.1.1: cover approaches n(n−1)/(S(S−1)).
	if h := CompareSortHITs(40, 5); h != 78 {
		t.Errorf("compare(40,5) = %d", h)
	}
	if h := CompareSortHITs(5, 5); h != 1 {
		t.Errorf("compare(5,5) = %d", h)
	}
	if h := CompareSortHITs(1, 5); h != 0 {
		t.Errorf("compare(1,5) = %d", h)
	}
}

func TestEffortAndRefusal(t *testing.T) {
	// The paper's stalled group-size-20 comparison exceeds the refusal
	// threshold; the default group of 5 does not.
	if !Refused(CompareEffort(20)) {
		t.Error("group-size-20 comparison should be refused")
	}
	if Refused(CompareEffort(5)) {
		t.Error("group-size-5 comparison should be accepted")
	}
	if Refused(GridEffort(5, 5)) {
		t.Error("5×5 grid should be accepted")
	}
	if Refused(PairEffort(10)) {
		t.Error("10-pair batch should be accepted")
	}
	if GenerativeEffort(3, 4) <= GenerativeEffort(1, 4) {
		t.Error("more fields must cost more effort")
	}
}

func TestGroupMakespanMonotonic(t *testing.T) {
	if GroupMakespanHours(0, 5, 1) != 0 {
		t.Error("empty group should take no time")
	}
	small := GroupMakespanHours(10, 5, 1)
	large := GroupMakespanHours(100, 5, 1)
	if small <= 0 || large <= small {
		t.Errorf("makespan not monotone: %v vs %v", small, large)
	}
	// High-effort HITs slow the group quadratically.
	slow := GroupMakespanHours(10, 5, 16)
	if slow <= small {
		t.Errorf("effortful group %v should be slower than %v", slow, small)
	}
}

func TestQualityModel(t *testing.T) {
	// Batching loses accuracy monotonically (§3.3.2).
	if !(PairQuality(1) > PairQuality(5) && PairQuality(5) > PairQuality(10)) {
		t.Error("pair quality must fall with batch size")
	}
	if PairQuality(1) != QualitySimplePair {
		t.Error("unbatched pairs are the baseline")
	}
	// Dense grids are the grid interface's failure mode (§3.1.3).
	sparse := GridQuality(5, 5, 0.8)
	dense := GridQuality(5, 5, 6.0)
	if dense >= sparse {
		t.Errorf("dense grid %v should score below sparse %v", dense, sparse)
	}
	// Sort interfaces: Compare > Hybrid > Rate at moderate refinement.
	h := HybridQuality(40, 20, 6)
	if !(QualityCompareSort > h && h > QualityRateSort) {
		t.Errorf("hybrid quality %v out of order", h)
	}
	// Hybrid quality grows with iterations and degrades with n.
	if HybridQuality(200, 20, 6) >= HybridQuality(200, 200, 6) {
		t.Error("more iterations must not lower hybrid quality")
	}
	if FilterQuality(1) <= FilterQuality(10) {
		t.Error("filter quality must fall with batch size")
	}
}

func TestMajorityQuality(t *testing.T) {
	// One vote is the raw accuracy; more votes boost it (for q > 0.5).
	if got := MajorityQuality(0.9, 1); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("k=1: %v", got)
	}
	q3 := MajorityQuality(0.9, 3)
	q5 := MajorityQuality(0.9, 5)
	if !(q3 > 0.9 && q5 > q3) {
		t.Errorf("majority boost broken: %v %v", q3, q5)
	}
	// Exact binomial check: P(≥2 of 3 | 0.9) = 0.972.
	if math.Abs(q3-0.972) > 1e-9 {
		t.Errorf("k=3 exact: %v", q3)
	}
	// Even k counts half the tie mass: k=2 equals k=1 in expectation.
	if got := MajorityQuality(0.9, 2); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("k=2: %v", got)
	}
}
