package cost

import (
	"math"
	"strings"
	"testing"
)

func TestDollars(t *testing.T) {
	// Paper §3.3.2: 900 comparisons × 10 assignments × $0.015 = $135.
	if got := Dollars(900, 10); math.Abs(got-135) > 1e-9 {
		t.Errorf("Dollars(900,10) = %v, want 135", got)
	}
	// §3.3.4: unfiltered join at 5 assignments = $67.50.
	if got := Dollars(900, 5); math.Abs(got-67.5) > 1e-9 {
		t.Errorf("Dollars(900,5) = %v, want 67.50", got)
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger()
	l.Add("join", 900, 5)
	l.Add("extract", 16, 5)
	if l.TotalHITs() != 916 {
		t.Errorf("hits = %d", l.TotalHITs())
	}
	want := Dollars(900, 5) + Dollars(16, 5)
	if math.Abs(l.TotalDollars()-want) > 1e-9 {
		t.Errorf("dollars = %v, want %v", l.TotalDollars(), want)
	}
	rep := l.Report()
	for _, s := range []string{"join", "extract", "TOTAL", "916"} {
		if !strings.Contains(rep, s) {
			t.Errorf("report missing %q:\n%s", s, rep)
		}
	}
	if len(l.Entries()) != 2 {
		t.Errorf("entries = %d", len(l.Entries()))
	}
}
