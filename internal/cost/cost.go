// Package cost implements the paper's pricing model and HIT accounting:
// every assignment pays the worker $0.01 plus Amazon's half-cent
// commission ($0.015 total, §3.3.2), and the optimizer's objective is to
// minimize the total number of HITs (§2.6).
package cost

import (
	"fmt"
	"strings"
	"sync"
)

// Cents per assignment, per the paper.
const (
	// WorkerCents is the payment to the worker per assignment.
	WorkerCents = 1.0
	// CommissionCents is Amazon's commission per assignment.
	CommissionCents = 0.5
	// AssignmentCents is the full cost of one assignment.
	AssignmentCents = WorkerCents + CommissionCents
)

// Dollars returns the dollar cost of posting `hits` HITs at
// `assignmentsPerHIT` assignments each.
func Dollars(hits, assignmentsPerHIT int) float64 {
	return float64(hits) * float64(assignmentsPerHIT) * AssignmentCents / 100
}

// Entry is one labelled line of spending.
type Entry struct {
	// Label names the operator that spent.
	Label string
	// HITs is the number of HITs posted.
	HITs int
	// Assignments is the workers-per-HIT level the HITs were posted at.
	Assignments int
}

// Dollars returns the entry's cost.
func (e Entry) Dollars() float64 { return Dollars(e.HITs, e.Assignments) }

// Ledger accumulates labelled HIT spending for a query run. It is safe
// for concurrent use by the executor's operator goroutines.
type Ledger struct {
	mu      sync.Mutex
	entries []Entry
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Add records a line of spending.
func (l *Ledger) Add(label string, hits, assignmentsPerHIT int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, Entry{Label: label, HITs: hits, Assignments: assignmentsPerHIT})
}

// Entries returns a copy of the recorded lines.
func (l *Ledger) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// TotalHITs sums HITs across entries.
func (l *Ledger) TotalHITs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.entries {
		n += e.HITs
	}
	return n
}

// TotalDollars sums dollar cost across entries.
func (l *Ledger) TotalDollars() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var d float64
	for _, e := range l.entries {
		d += e.Dollars()
	}
	return d
}

// Report renders a line-itemed cost table.
func (l *Ledger) Report() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %8s %6s %10s\n", "operation", "HITs", "asgn", "cost")
	var hits int
	var dollars float64
	for _, e := range l.entries {
		fmt.Fprintf(&b, "%-40s %8d %6d %10.2f\n", e.Label, e.HITs, e.Assignments, e.Dollars())
		hits += e.HITs
		dollars += e.Dollars()
	}
	fmt.Fprintf(&b, "%-40s %8d %6s %10.2f\n", "TOTAL", hits, "", dollars)
	return b.String()
}
