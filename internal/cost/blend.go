package cost

// ObservationPseudoWeight is the weight the estimator's built-in prior
// carries when blended against observed history: an observation backed
// by fewer than this many tuples/pairs nudges the estimate, one backed
// by many more dominates it. Shrinking toward the prior keeps a single
// tiny run from swinging plans wildly (the learned-joins motivation:
// history informs, it does not dictate).
const ObservationPseudoWeight = 32

// BlendObserved shrinks an observed statistic toward the model prior:
// the result is the weight-proportional mix of prior (at
// ObservationPseudoWeight) and observed (at its own weight, typically
// the tuple or pair count it was measured over). A non-positive weight
// returns the prior unchanged.
func BlendObserved(prior, observed, weight float64) float64 {
	if weight <= 0 {
		return prior
	}
	return (prior*ObservationPseudoWeight + observed*weight) / (ObservationPseudoWeight + weight)
}
