// This file grows the package from pure accounting into the planner's
// estimator: closed-form HIT counts for every crowd interface, a
// per-interface answer-quality model calibrated to the paper's
// experiments, and a group-makespan model mirroring the simulator's
// throughput curve. The optimizer (internal/plan) uses these to choose
// join and sort interfaces from cardinality and budget (§2.6: "the
// objective is to minimize the total number of HITs").
//
// All functions here are pure math over ints and floats — no crowd,
// relation, or operator dependencies — so every layer (planner,
// executor, benchmarks, tests) can share one source of truth.
package cost

import "math"

// CeilDiv returns ⌈n/d⌉ for positive d (0 when n ≤ 0).
func CeilDiv(n, d int) int {
	if n <= 0 {
		return 0
	}
	if d < 1 {
		d = 1
	}
	return (n + d - 1) / d
}

// BatchHITs is the merged-interface HIT count for n single-subject
// questions at batchSize questions per HIT (filters, generatives,
// ratings, feature extraction — the paper's merging optimization, §2.6).
func BatchHITs(n, batchSize int) int { return CeilDiv(n, batchSize) }

// JoinPairs estimates the candidate-pair count of an nl×nr join after
// applying pass fraction f in (0,1] (1 = full cross product).
func JoinPairs(nl, nr int, f float64) int {
	if nl <= 0 || nr <= 0 {
		return 0
	}
	if f <= 0 || f > 1 {
		f = 1
	}
	p := int(math.Ceil(float64(nl) * float64(nr) * f))
	if p < 1 {
		p = 1
	}
	return p
}

// SimpleJoinHITs is one HIT per candidate pair (§3.1.1).
func SimpleJoinHITs(pairs int) int { return pairs }

// NaiveJoinHITs batches b pairs vertically per HIT (§3.1.2).
func NaiveJoinHITs(pairs, b int) int { return CeilDiv(pairs, b) }

// SmartJoinHITs is the r×s grid interface (§3.1.3): ⌈nl/r⌉·⌈ns/s⌉
// blocks for a full cross product. With feature filtering only blocks
// containing at least one surviving candidate are posted; under a
// uniform pass fraction f the expected occupied share of a block of
// r·s cells is 1−(1−f)^(r·s).
func SmartJoinHITs(nl, nr, r, s int, f float64) int {
	if nl <= 0 || nr <= 0 {
		return 0
	}
	blocks := CeilDiv(nl, r) * CeilDiv(nr, s)
	if f <= 0 || f >= 1 {
		return blocks
	}
	occupied := 1 - math.Pow(1-f, float64(r*s))
	est := int(math.Ceil(float64(blocks) * occupied))
	if est < 1 {
		est = 1
	}
	return est
}

// DefaultUnknownRate is the estimator's per-tuple chance a feature
// extraction resolves to UNKNOWN (mirroring the simulator's calibrated
// UnknownShare); UNKNOWN is a wildcard that never prunes (§2.4), so it
// inflates the surviving pair count substantially.
const DefaultUnknownRate = 0.15

// FeaturePassFraction estimates the probability one POSSIBLY feature
// of domain size k lets a candidate pair through: both sides extracted
// to known values that collide (uniform 1/k), or either side UNKNOWN.
func FeaturePassFraction(k int, unknownRate float64) float64 {
	if k < 1 {
		k = 1
	}
	known := (1 - unknownRate) * (1 - unknownRate)
	return known/float64(k) + (1 - known)
}

// RateSortHITs is the linear rating interface (§4.1.2).
func RateSortHITs(n, batch int) int { return CeilDiv(n, batch) }

// HybridSortHITs is the rating seed plus one comparison HIT per
// refinement iteration (§4.1.3).
func HybridSortHITs(n, rateBatch, iterations int) int {
	return RateSortHITs(n, rateBatch) + iterations
}

// CompareSortHITs approximates the group-cover size of the comparison
// interface: every pair must appear in some group of S items, so the
// count approaches n(n−1)/(S(S−1)) (§4.1.1). The greedy cover the
// executor actually builds (sortop.CoverGroups) runs slightly over this
// bound; planners that know n exactly should prefer the exact cover
// size and use this only as a closed form.
func CompareSortHITs(n, groupSize int) int {
	if n < 2 {
		return 0
	}
	if groupSize >= n {
		return 1
	}
	if groupSize < 2 {
		groupSize = 2
	}
	return CeilDiv(n*(n-1), groupSize*(groupSize-1))
}

// --- Effort (single-judgment equivalents, mirroring crowd.effort) ---

// PairEffort is the effort of a HIT holding `batch` pair judgments.
func PairEffort(batch int) float64 { return float64(batch) }

// GridEffort is the effort of one r×s grid HIT — cheaper per cell than
// standalone judgments (clicking matches in context).
func GridEffort(r, s int) float64 { return 0.35 * float64(r*s) }

// GenerativeEffort is the effort of a HIT with `batch` generative
// questions of `fields` fields each.
func GenerativeEffort(fields, batch int) float64 {
	return (0.5 + 0.5*float64(fields)) * float64(batch)
}

// CompareEffort is the effort of ranking a group of S items:
// S·log₂(S)/2 — ranking needs more than S looks.
func CompareEffort(groupSize int) float64 {
	s := float64(groupSize)
	if s < 2 {
		return 1
	}
	return s * math.Log2(s) / 2
}

// Marketplace behavior constants, matching crowd.DefaultConfig. The
// estimator deliberately restates them (rather than importing the
// simulator) so a live-MTurk backend can keep the same planner.
const (
	// RefusalEffort is the per-HIT effort beyond which workers refuse
	// the task at the paper's price (the stalled group-size-20 sort).
	RefusalEffort = 30.0
	// slowdownEffort is the effort at which pickup starts slowing;
	// beyond it throughput falls quadratically.
	slowdownEffort = 8.0
	// assignmentsPerHour is the base marketplace throughput.
	assignmentsPerHour = 2500.0
	// groupRamp softens throughput for small groups (less attractive).
	groupRamp = 20.0
	// stragglerStretch is the expected last-assignment position on the
	// completion curve: the final 5% of assignments stretched ~20× plus
	// per-assignment jitter (Fig. 4's long tail).
	stragglerStretch = 2.0
)

// Refused reports whether workers would decline a HIT of this effort.
func Refused(effort float64) bool { return effort > RefusalEffort }

// GroupMakespanHours estimates the completion time of a HIT group:
// assignments divided by ramped throughput, stretched by the straggler
// tail, and slowed quadratically for high-effort HITs — the simulator's
// curve in closed form.
func GroupMakespanHours(hits, assignmentsPerHIT int, effortPerHIT float64) float64 {
	if hits <= 0 || assignmentsPerHIT <= 0 {
		return 0
	}
	a := float64(hits * assignmentsPerHIT)
	base := (a + groupRamp) / assignmentsPerHour
	slow := 1.0
	if effortPerHIT > slowdownEffort {
		r := slowdownEffort / effortPerHIT
		slow = r * r
	}
	return base * stragglerStretch / slow
}

// --- Answer quality model ---
//
// Quality is the estimated per-question accuracy of one assignment's
// answer under the given interface, in [0,1]. The constants are
// calibrated to the paper's findings: unbatched interfaces are most
// accurate; vertical batching loses accuracy roughly linearly (§3.3.2
// shows NaiveBatch 10 visibly below NaiveBatch 5); grids lose a little
// per cell and a lot once multiple true matches share one grid (workers
// miss matches in dense grids, §3.1.3); comparison sorts are near-exact
// while ratings plateau at τ ≈ 0.78 (§4.2.2); hybrid quality grows with
// refinement passes (§4.2.4, Fig. 7).

// QualitySimplePair is the unbatched join interface's accuracy.
const QualitySimplePair = 0.95

// PairQuality estimates per-answer accuracy of a b-pair vertical batch.
func PairQuality(b int) float64 {
	return clampQ(QualitySimplePair - 0.012*float64(b-1))
}

// GridQuality estimates per-cell accuracy of an r×s grid given the
// expected number of true matches per grid (density penalty: every
// match beyond the first costs accuracy, as workers skim).
func GridQuality(r, s int, matchesPerGrid float64) float64 {
	q := QualitySimplePair - 0.004*float64(r*s-1)
	if matchesPerGrid > 1 {
		q -= 0.07 * (matchesPerGrid - 1)
	}
	return clampQ(q)
}

// FilterQuality estimates per-answer accuracy of a b-question filter or
// generative batch.
func FilterQuality(b int) float64 {
	return clampQ(0.95 - 0.008*float64(b-1))
}

// Sort-interface accuracies (§4.2.2).
const (
	QualityCompareSort = 0.95
	QualityRateSort    = 0.78
)

// HybridQuality estimates hybrid-sort accuracy from refinement
// coverage: iterations·step/n is the number of full window passes over
// the list; quality saturates at three passes (Fig. 7's plateaus).
func HybridQuality(n, iterations, step int) float64 {
	if n < 2 {
		return QualityCompareSort
	}
	passes := float64(iterations*step) / float64(n)
	frac := passes / 3
	if frac > 1 {
		frac = 1
	}
	return clampQ(0.80 + 0.12*frac)
}

// MajorityQuality is the probability a k-vote majority is correct when
// each vote is independently correct with probability q. Even k counts
// half of the tie mass (a tie resolves by, in effect, a coin flip).
func MajorityQuality(q float64, k int) float64 {
	if k <= 1 {
		return clampQ(q)
	}
	var p float64
	for i := 0; i <= k; i++ {
		w := binom(k, i) * math.Pow(q, float64(i)) * math.Pow(1-q, float64(k-i))
		switch {
		case 2*i > k:
			p += w
		case 2*i == k:
			p += w / 2
		}
	}
	return clampQ(p)
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	return math.Round(math.Exp(lgammaE(float64(n+1)) - lgammaE(float64(k+1)) - lgammaE(float64(n-k+1))))
}

func lgammaE(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func clampQ(q float64) float64 {
	if q < 0.5 {
		return 0.5
	}
	if q > 1 {
		return 1
	}
	return q
}
