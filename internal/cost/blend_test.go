package cost

import "testing"

func TestBlendObserved(t *testing.T) {
	// Zero or negative weight leaves the prior untouched.
	if got := BlendObserved(0.5, 0.9, 0); got != 0.5 {
		t.Fatalf("BlendObserved(weight=0) = %v, want prior 0.5", got)
	}
	if got := BlendObserved(0.5, 0.9, -4); got != 0.5 {
		t.Fatalf("BlendObserved(weight<0) = %v, want prior 0.5", got)
	}
	// Weight equal to the pseudo-weight lands halfway.
	if got := BlendObserved(0.2, 0.6, ObservationPseudoWeight); got != 0.4 {
		t.Fatalf("BlendObserved(equal weights) = %v, want 0.4", got)
	}
	// A heavily-backed observation dominates the prior.
	got := BlendObserved(0.1, 0.9, 100*ObservationPseudoWeight)
	if got < 0.85 || got > 0.9 {
		t.Fatalf("BlendObserved(heavy observation) = %v, want ≈0.89", got)
	}
	// Observation equal to the prior is a fixed point.
	if got := BlendObserved(0.3, 0.3, 17); got != 0.3 {
		t.Fatalf("BlendObserved(fixed point) = %v, want 0.3", got)
	}
}
