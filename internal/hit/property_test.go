package hit

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Merge preserves the question multiset and respects the batch
// bound for arbitrary (n, batch) combinations.
func TestMergePropertyPreservesQuestions(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	prop := func(_ uint8) bool {
		n := 1 + rng.Intn(60)
		batch := 1 + rng.Intn(12)
		b := NewBuilder("p", 5, 1)
		qs := filterQuestions(n)
		hits, err := b.Merge(qs, batch)
		if err != nil {
			return false
		}
		seen := map[string]int{}
		for _, h := range hits {
			if len(h.Questions) > batch {
				return false
			}
			for _, q := range h.Questions {
				seen[q.ID]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		// HIT count is exactly ceil(n/batch).
		return len(hits) == (n+batch-1)/batch
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: GridHITs covers every (left, right) pair exactly once for
// arbitrary table and grid shapes.
func TestGridPropertyExactCover(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	mk := func(n int, side string) []Question {
		qs := make([]Question, n)
		for i := range qs {
			qs[i] = Question{Kind: JoinPairQ, Task: "t", Tuple: imgTuple(fmt.Sprintf("%s%03d", side, i))}
		}
		return qs
	}
	prop := func(_ uint8) bool {
		nl := 1 + rng.Intn(15)
		nr := 1 + rng.Intn(15)
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		b := NewBuilder("p", 5, 1)
		hits, err := b.GridHITs(mk(nl, "l"), mk(nr, "r"), r, c)
		if err != nil {
			return false
		}
		pairs := map[string]int{}
		for _, h := range hits {
			q := h.Questions[0]
			if len(q.LeftItems) > r || len(q.RightItems) > c {
				return false
			}
			for _, lt := range q.LeftItems {
				for _, rt := range q.RightItems {
					pairs[lt.MustGet("name").Text()+"|"+rt.MustGet("name").Text()]++
				}
			}
		}
		if len(pairs) != nl*nr {
			return false
		}
		for _, n := range pairs {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: CacheKey is insensitive to question ID but sensitive to any
// input tuple change.
func TestCacheKeyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	prop := func(_ uint8) bool {
		a := imgTuple(fmt.Sprintf("x%d", rng.Intn(1000)))
		bT := imgTuple(fmt.Sprintf("y%d", rng.Intn(1000)))
		q1 := Question{ID: "id1", Kind: JoinPairQ, Task: "t", Left: a, Right: bT}
		q2 := Question{ID: "id2", Kind: JoinPairQ, Task: "t", Left: a, Right: bT}
		if q1.CacheKey() != q2.CacheKey() {
			return false
		}
		q3 := q1
		q3.Task = "other"
		return q1.CacheKey() != q3.CacheKey()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
