package hit

import (
	"fmt"
	"html/template"
	"strings"

	"qurk/internal/task"
)

// Compiler renders HITs to the HTML forms a live marketplace would host —
// the "HIT Compiler" box in the paper's architecture (Fig. 1). The
// simulated crowd never parses this HTML (it answers from the Question
// structs), but compiling it keeps the pipeline honest: every interface
// the paper screenshots (Figs. 2 and 5) has a renderer, and tests golden-
// check the structure.
type Compiler struct {
	reg *task.Registry
}

// NewCompiler creates a compiler resolving task names against reg.
func NewCompiler(reg *task.Registry) *Compiler { return &Compiler{reg: reg} }

var page = template.Must(template.New("page").Parse(
	`<html><body><form action="/submit" method="POST">
{{range .Blocks}}<div class="question">{{.}}</div>
{{end}}<input type="submit" value="Submit">
</form></body></html>
`))

// Compile renders the HIT's form. Prompts from task templates are trusted
// HTML (they come from the workflow developer, as in the paper); worker-
// facing labels are escaped.
func (c *Compiler) Compile(h *HIT) (string, error) {
	blocks := make([]template.HTML, 0, len(h.Questions))
	for i := range h.Questions {
		q := &h.Questions[i]
		blk, err := c.compileQuestion(q)
		if err != nil {
			return "", fmt.Errorf("hit %s question %s: %w", h.ID, q.ID, err)
		}
		blocks = append(blocks, template.HTML(blk))
	}
	var b strings.Builder
	if err := page.Execute(&b, struct{ Blocks []template.HTML }{blocks}); err != nil {
		return "", err
	}
	return b.String(), nil
}

func (c *Compiler) compileQuestion(q *Question) (string, error) {
	switch q.Kind {
	case FilterQ:
		return c.compileFilter(q)
	case GenerativeQ:
		return c.compileGenerative(q)
	case JoinPairQ:
		return c.compileJoinPair(q)
	case JoinGridQ:
		return c.compileJoinGrid(q)
	case CompareQ:
		return c.compileCompare(q)
	case RateQ:
		return c.compileRate(q)
	default:
		return "", fmt.Errorf("hit: no renderer for kind %s", q.Kind)
	}
}

func (c *Compiler) lookup(name string) (task.Task, error) {
	if c.reg == nil {
		return nil, fmt.Errorf("hit: compiler has no task registry")
	}
	return c.reg.Lookup(name)
}

func (c *Compiler) compileFilter(q *Question) (string, error) {
	t, err := c.lookup(q.Task)
	if err != nil {
		return "", err
	}
	f, ok := t.(*task.Filter)
	if !ok {
		return "", fmt.Errorf("hit: task %s is %s, want Filter", q.Task, t.TaskType())
	}
	body, err := f.Prompt.Render(q.Tuple)
	if err != nil {
		return "", err
	}
	yes, no := f.YesText, f.NoText
	if yes == "" {
		yes = "Yes"
	}
	if no == "" {
		no = "No"
	}
	return fmt.Sprintf(`%s<br><label><input type="radio" name=%q value="yes">%s</label> <label><input type="radio" name=%q value="no">%s</label>`,
		body, q.ID, template.HTMLEscapeString(yes), q.ID, template.HTMLEscapeString(no)), nil
}

func (c *Compiler) compileGenerative(q *Question) (string, error) {
	// A combined question names its tasks "a+b+c"; render each task's
	// prompt and the requested fields in order.
	var b strings.Builder
	for _, name := range strings.Split(q.Task, "+") {
		t, err := c.lookup(name)
		if err != nil {
			return "", err
		}
		g, ok := t.(*task.Generative)
		if !ok {
			return "", fmt.Errorf("hit: task %s is %s, want Generative", name, t.TaskType())
		}
		body, err := g.Prompt.Render(q.Tuple)
		if err != nil {
			return "", err
		}
		b.WriteString(body)
		b.WriteString("<br>")
		for _, f := range g.Fields {
			if len(q.Fields) > 0 && !containsField(q.Fields, f.Name) {
				continue
			}
			switch f.Response.Kind {
			case task.TextResponse:
				fmt.Fprintf(&b, `<label>%s <input type="text" name="%s.%s"></label><br>`,
					template.HTMLEscapeString(f.Response.Label), q.ID, f.Name)
			case task.RadioResponse:
				fmt.Fprintf(&b, `%s: `, template.HTMLEscapeString(f.Response.Label))
				for _, opt := range f.Response.Options {
					fmt.Fprintf(&b, `<label><input type="radio" name="%s.%s" value=%q>%s</label> `,
						q.ID, f.Name, opt, template.HTMLEscapeString(opt))
				}
				b.WriteString("<br>")
			}
		}
	}
	return b.String(), nil
}

func containsField(fields []string, name string) bool {
	for _, f := range fields {
		if f == name {
			return true
		}
	}
	return false
}

func (c *Compiler) equiJoin(name string) (*task.EquiJoin, error) {
	t, err := c.lookup(name)
	if err != nil {
		return nil, err
	}
	e, ok := t.(*task.EquiJoin)
	if !ok {
		return nil, fmt.Errorf("hit: task %s is %s, want EquiJoin", name, t.TaskType())
	}
	return e, nil
}

func (c *Compiler) compileJoinPair(q *Question) (string, error) {
	e, err := c.equiJoin(q.Task)
	if err != nil {
		return "", err
	}
	left, err := e.LeftNormal.Render(q.Left)
	if err != nil {
		return "", err
	}
	right, err := e.RightNormal.Render(q.Right)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf(`%s<br><table><tr><td>%s</td><td>%s</td></tr></table><label><input type="radio" name=%q value="yes">Yes</label> <label><input type="radio" name=%q value="no">No</label>`,
		template.HTMLEscapeString(e.PairQuestion()), left, right, q.ID, q.ID), nil
}

func (c *Compiler) compileJoinGrid(q *Question) (string, error) {
	e, err := c.equiJoin(q.Task)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, `Click on pairs of %s that match.<br><table><tr><td class="leftcol">`,
		template.HTMLEscapeString(e.PluralName))
	for i, t := range q.LeftItems {
		prev, err := e.LeftPreview.Render(t)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, `<div class="cell" data-side="l" data-idx="%d">%s</div>`, i, prev)
	}
	b.WriteString(`</td><td class="rightcol">`)
	for i, t := range q.RightItems {
		prev, err := e.RightPreview.Render(t)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, `<div class="cell" data-side="r" data-idx="%d">%s</div>`, i, prev)
	}
	fmt.Fprintf(&b, `</td></tr></table><label><input type="checkbox" name="%s.none">No matches</label>`, q.ID)
	return b.String(), nil
}

func (c *Compiler) rank(name string) (*task.Rank, error) {
	t, err := c.lookup(name)
	if err != nil {
		return nil, err
	}
	r, ok := t.(*task.Rank)
	if !ok {
		return nil, fmt.Errorf("hit: task %s is %s, want Rank", name, t.TaskType())
	}
	return r, nil
}

func (c *Compiler) compileCompare(q *Question) (string, error) {
	r, err := c.rank(q.Task)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(template.HTMLEscapeString(r.CompareQuestion()))
	b.WriteString("<br>")
	for i, t := range q.Items {
		body, err := r.HTML.Render(t)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, `<div class="item">%s <select name="%s.rank%d">`, body, q.ID, i)
		for pos := 1; pos <= len(q.Items); pos++ {
			fmt.Fprintf(&b, `<option value="%d">%d</option>`, pos, pos)
		}
		b.WriteString(`</select></div>`)
	}
	return b.String(), nil
}

func (c *Compiler) compileRate(q *Question) (string, error) {
	r, err := c.rank(q.Task)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if len(q.Context) > 0 {
		b.WriteString(`<div class="context">`)
		for _, t := range q.Context {
			body, err := r.HTML.Render(t)
			if err != nil {
				return "", err
			}
			b.WriteString(body)
		}
		b.WriteString(`</div>`)
	}
	b.WriteString(template.HTMLEscapeString(r.RateQuestion(q.Scale)))
	b.WriteString("<br>")
	body, err := r.HTML.Render(q.Tuple)
	if err != nil {
		return "", err
	}
	b.WriteString(body)
	b.WriteString("<br>")
	for v := 1; v <= q.Scale; v++ {
		fmt.Fprintf(&b, `<label><input type="radio" name=%q value="%d">%d</label> `, q.ID, v, v)
	}
	return b.String(), nil
}
