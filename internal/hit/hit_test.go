package hit

import (
	"fmt"
	"strings"
	"testing"

	"qurk/internal/relation"
	"qurk/internal/task"
)

var imgSchema = relation.MustSchema(
	relation.Column{Name: "name", Kind: relation.KindText},
	relation.Column{Name: "img", Kind: relation.KindURL},
)

func imgTuple(name string) relation.Tuple {
	return relation.MustTuple(imgSchema, relation.Text(name), relation.URL("http://x/"+name+".jpg"))
}

func filterQuestions(n int) []Question {
	qs := make([]Question, n)
	for i := range qs {
		qs[i] = Question{
			ID:    fmt.Sprintf("q%d", i),
			Kind:  FilterQ,
			Task:  "isFemale",
			Tuple: imgTuple(fmt.Sprintf("celeb%d", i)),
		}
	}
	return qs
}

func TestMergeBatching(t *testing.T) {
	b := NewBuilder("g1", 5, 1.0)
	hits, err := b.Merge(filterQuestions(10), 3)
	if err != nil {
		t.Fatal(err)
	}
	// ceil(10/3) = 4 HITs: 3+3+3+1.
	if len(hits) != 4 {
		t.Fatalf("got %d HITs, want 4", len(hits))
	}
	sizes := []int{3, 3, 3, 1}
	for i, h := range hits {
		if len(h.Questions) != sizes[i] {
			t.Errorf("hit %d has %d questions, want %d", i, len(h.Questions), sizes[i])
		}
		if h.GroupID != "g1" || h.Assignments != 5 || h.Kind != FilterQ {
			t.Errorf("hit %d metadata wrong: %+v", i, h)
		}
	}
	// IDs unique.
	seen := map[string]bool{}
	for _, h := range hits {
		if seen[h.ID] {
			t.Errorf("duplicate hit ID %s", h.ID)
		}
		seen[h.ID] = true
	}
}

func TestMergeUnbatched(t *testing.T) {
	b := NewBuilder("g", 5, 1.0)
	hits, err := b.Merge(filterQuestions(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 4 {
		t.Fatalf("unbatched: got %d HITs, want 4", len(hits))
	}
	hits, err = b.Merge(nil, 5)
	if err != nil || hits != nil {
		t.Errorf("empty merge: %v, %v", hits, err)
	}
}

func TestMergeMixedKindsRejected(t *testing.T) {
	b := NewBuilder("g", 5, 1.0)
	qs := filterQuestions(2)
	qs[1].Kind = RateQ
	qs[1].Scale = 7
	if _, err := b.Merge(qs, 5); err == nil {
		t.Error("mixed-kind merge accepted")
	}
}

func TestCombine(t *testing.T) {
	b := NewBuilder("g", 5, 1.0)
	tup := imgTuple("brad")
	perTuple := [][]Question{{
		{Kind: GenerativeQ, Task: "gender", Tuple: tup, Fields: []string{"gender"}},
		{Kind: GenerativeQ, Task: "hairColor", Tuple: tup, Fields: []string{"hair"}},
		{Kind: GenerativeQ, Task: "skinColor", Tuple: tup, Fields: []string{"skin"}},
	}}
	hits, err := b.Combine(perTuple, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || len(hits[0].Questions) != 1 {
		t.Fatalf("combine shape: %d hits", len(hits))
	}
	q := hits[0].Questions[0]
	if q.Task != "gender+hairColor+skinColor" {
		t.Errorf("combined task = %q", q.Task)
	}
	if len(q.Fields) != 3 {
		t.Errorf("combined fields = %v", q.Fields)
	}
}

func TestCombineErrors(t *testing.T) {
	b := NewBuilder("g", 5, 1.0)
	tup1, tup2 := imgTuple("a"), imgTuple("b")
	// Different tuples cannot combine.
	if _, err := b.Combine([][]Question{{
		{Kind: GenerativeQ, Task: "x", Tuple: tup1, Fields: []string{"f1"}},
		{Kind: GenerativeQ, Task: "y", Tuple: tup2, Fields: []string{"f2"}},
	}}, 1); err == nil {
		t.Error("cross-tuple combine accepted")
	}
	// Shared field names cannot combine.
	if _, err := b.Combine([][]Question{{
		{Kind: GenerativeQ, Task: "x", Tuple: tup1, Fields: []string{"f"}},
		{Kind: GenerativeQ, Task: "y", Tuple: tup1, Fields: []string{"f"}},
	}}, 1); err == nil {
		t.Error("field collision accepted")
	}
	// Non-generative kinds cannot combine.
	if _, err := b.Combine([][]Question{{
		{Kind: FilterQ, Task: "x", Tuple: tup1},
	}}, 1); err == nil {
		t.Error("filter combine accepted")
	}
	if _, err := b.Combine([][]Question{{}}, 1); err == nil {
		t.Error("empty combine accepted")
	}
}

func TestGridHITs(t *testing.T) {
	b := NewBuilder("g", 5, 1.0)
	mk := func(n int, task string) []Question {
		qs := make([]Question, n)
		for i := range qs {
			qs[i] = Question{Kind: JoinPairQ, Task: task, Tuple: imgTuple(fmt.Sprintf("%s%d", task, i))}
		}
		return qs
	}
	// 7 left, 5 right, 3x3 grid → ceil(7/3)*ceil(5/3) = 3*2 = 6 HITs.
	hits, err := b.GridHITs(mk(7, "l"), mk(5, "r"), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 6 {
		t.Fatalf("grid: %d HITs, want 6", len(hits))
	}
	// Every (left,right) pair appears in exactly one grid HIT.
	pairs := map[string]int{}
	for _, h := range hits {
		q := h.Questions[0]
		for _, lt := range q.LeftItems {
			for _, rt := range q.RightItems {
				pairs[lt.MustGet("name").Text()+"|"+rt.MustGet("name").Text()]++
			}
		}
	}
	if len(pairs) != 35 {
		t.Fatalf("grid covers %d pairs, want 35", len(pairs))
	}
	for p, n := range pairs {
		if n != 1 {
			t.Errorf("pair %s appears %d times", p, n)
		}
	}
	if _, err := b.GridHITs(mk(2, "l"), mk(2, "r"), 0, 3); err == nil {
		t.Error("0-dimension grid accepted")
	}
	if hits, err := b.GridHITs(nil, mk(2, "r"), 2, 2); err != nil || hits != nil {
		t.Error("empty side should yield no HITs")
	}
}

func TestHITValidate(t *testing.T) {
	h := &HIT{ID: "h", Assignments: 5, Questions: []Question{{ID: "q", Kind: FilterQ}}}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*HIT{
		{Assignments: 5, Questions: []Question{{ID: "q"}}},          // no ID
		{ID: "h", Assignments: 5},                                   // no questions
		{ID: "h", Assignments: 0, Questions: []Question{{ID: "q"}}}, // no assignments
		{ID: "h", Assignments: 5, Questions: []Question{{}}},        // question no ID
		{ID: "h", Assignments: 5, Questions: []Question{{ID: "q", Kind: CompareQ, Items: []relation.Tuple{imgTuple("a")}}}}, // 1-item compare
		{ID: "h", Assignments: 5, Questions: []Question{{ID: "q", Kind: RateQ, Scale: 1}}},                                  // bad scale
		{ID: "h", Assignments: 5, Questions: []Question{{ID: "q", Kind: JoinGridQ}}},                                        // empty grid
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("bad HIT %d accepted", i)
		}
	}
}

func TestUnitsAndUnitCount(t *testing.T) {
	grid := Question{Kind: JoinGridQ,
		LeftItems:  []relation.Tuple{imgTuple("a"), imgTuple("b")},
		RightItems: []relation.Tuple{imgTuple("c"), imgTuple("d"), imgTuple("e")}}
	if grid.UnitCount() != 6 {
		t.Errorf("grid units = %d, want 6", grid.UnitCount())
	}
	cmp := Question{Kind: CompareQ, Items: []relation.Tuple{imgTuple("a"), imgTuple("b"), imgTuple("c")}}
	if cmp.UnitCount() != 3 {
		t.Errorf("compare units = %d, want 3", cmp.UnitCount())
	}
	h := &HIT{Questions: []Question{grid, cmp, {Kind: FilterQ}}}
	if h.Units() != 10 {
		t.Errorf("hit units = %d, want 10", h.Units())
	}
}

func TestCacheKeyStability(t *testing.T) {
	q1 := Question{Kind: JoinPairQ, Task: "samePerson", Left: imgTuple("a"), Right: imgTuple("b")}
	q2 := Question{Kind: JoinPairQ, Task: "samePerson", Left: imgTuple("a"), Right: imgTuple("b")}
	q3 := Question{Kind: JoinPairQ, Task: "samePerson", Left: imgTuple("b"), Right: imgTuple("a")}
	if q1.CacheKey() != q2.CacheKey() {
		t.Error("identical questions must share cache keys")
	}
	if q1.CacheKey() == q3.CacheKey() {
		t.Error("swapped pair should differ")
	}
	// IDs must NOT affect the key (cache survives re-planning).
	q2.ID = "different"
	if q1.CacheKey() != q2.CacheKey() {
		t.Error("question ID leaked into cache key")
	}
}

func TestCache(t *testing.T) {
	c := NewCache()
	q := &Question{Kind: FilterQ, Task: "t", Tuple: imgTuple("a")}
	if _, ok := c.Lookup(q); ok {
		t.Error("empty cache hit")
	}
	c.Store(q, []CachedAnswer{{WorkerID: "w1", Answer: Answer{Bool: true}}})
	got, ok := c.Lookup(q)
	if !ok || len(got) != 1 || !got[0].Answer.Bool {
		t.Errorf("cache lookup = %v, %v", got, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d, %d; want 1, 1", hits, misses)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
	// Stored slice is copied.
	ans := []CachedAnswer{{WorkerID: "w"}}
	c.Store(q, ans)
	ans[0].WorkerID = "mutated"
	got, _ = c.Lookup(q)
	if got[0].WorkerID != "w" {
		t.Error("cache aliased caller slice")
	}
}

func TestSortAssignments(t *testing.T) {
	as := []Assignment{
		{HITID: "h2", WorkerID: "w1"},
		{HITID: "h1", WorkerID: "w2"},
		{HITID: "h1", WorkerID: "w1"},
	}
	SortAssignments(as)
	if as[0].HITID != "h1" || as[0].WorkerID != "w1" || as[2].HITID != "h2" {
		t.Errorf("sorted order wrong: %+v", as)
	}
}

func newTestRegistry(t *testing.T) *task.Registry {
	t.Helper()
	reg := task.NewRegistry()
	reg.MustRegister(&task.Filter{
		Name:    "isFemale",
		Prompt:  task.MustPrompt("<img src='%s'> Is the person in the image a woman?", "img"),
		YesText: "Yes", NoText: "No", Combiner: "MajorityVote",
	})
	reg.MustRegister(&task.EquiJoin{
		Name: "samePerson", SingularName: "celebrity", PluralName: "celebrities",
		LeftPreview:  task.MustPrompt("<img src='%s' class=smImg>", "img"),
		LeftNormal:   task.MustPrompt("<img src='%s' class=lgImg>", "img"),
		RightPreview: task.MustPrompt("<img src='%s' class=smImg>", "img"),
		RightNormal:  task.MustPrompt("<img src='%s' class=lgImg>", "img"),
		Combiner:     "MajorityVote",
	})
	reg.MustRegister(&task.Rank{
		Name: "squareSorter", SingularName: "square", PluralName: "squares",
		OrderDimensionName: "area", LeastName: "smallest", MostName: "largest",
		HTML: task.MustPrompt("<img src='%s' class=lgImg>", "img"),
	})
	reg.MustRegister(&task.Generative{
		Name:   "gender",
		Prompt: task.MustPrompt("<img src='%s'> What is this person's gender?", "img"),
		Fields: []task.Field{{Name: "gender", Response: task.Radio("Gender", "Male", "Female", "UNKNOWN"), Combiner: "MajorityVote"}},
	})
	return reg
}

func TestCompileFilterHIT(t *testing.T) {
	c := NewCompiler(newTestRegistry(t))
	b := NewBuilder("g", 5, 1.0)
	hits, err := b.Merge(filterQuestions(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	html, err := c.Compile(hits[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<form", "celeb0.jpg", "celeb1.jpg", `value="yes"`, "Submit"} {
		if !strings.Contains(html, want) {
			t.Errorf("filter HTML missing %q:\n%s", want, html)
		}
	}
	if n := strings.Count(html, `value="yes"`); n != 2 {
		t.Errorf("expected 2 yes radios, got %d", n)
	}
}

func TestCompileJoinPairAndGrid(t *testing.T) {
	c := NewCompiler(newTestRegistry(t))
	pair := &HIT{ID: "h", Assignments: 5, Kind: JoinPairQ, Questions: []Question{{
		ID: "q1", Kind: JoinPairQ, Task: "samePerson", Left: imgTuple("brad"), Right: imgTuple("angelina"),
	}}}
	html, err := c.Compile(pair)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"same celebrity", "brad.jpg", "angelina.jpg", "lgImg"} {
		if !strings.Contains(html, want) {
			t.Errorf("pair HTML missing %q", want)
		}
	}
	grid := &HIT{ID: "h2", Assignments: 5, Kind: JoinGridQ, Questions: []Question{{
		ID: "q2", Kind: JoinGridQ, Task: "samePerson",
		LeftItems:  []relation.Tuple{imgTuple("a"), imgTuple("b")},
		RightItems: []relation.Tuple{imgTuple("c")},
	}}}
	html, err = c.Compile(grid)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"smImg", "No matches", `data-side="l"`, `data-side="r"`} {
		if !strings.Contains(html, want) {
			t.Errorf("grid HTML missing %q", want)
		}
	}
}

func TestCompileCompareAndRate(t *testing.T) {
	c := NewCompiler(newTestRegistry(t))
	cmp := &HIT{ID: "h", Assignments: 5, Kind: CompareQ, Questions: []Question{{
		ID: "q", Kind: CompareQ, Task: "squareSorter",
		Items: []relation.Tuple{imgTuple("s1"), imgTuple("s2"), imgTuple("s3")},
	}}}
	html, err := c.Compile(cmp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "Order these squares from smallest area to largest area.") {
		t.Errorf("compare HTML missing question: %s", html)
	}
	if n := strings.Count(html, "<select"); n != 3 {
		t.Errorf("compare selects = %d, want 3", n)
	}
	rate := &HIT{ID: "h2", Assignments: 5, Kind: RateQ, Questions: []Question{{
		ID: "q", Kind: RateQ, Task: "squareSorter", Tuple: imgTuple("s1"), Scale: 7,
		Context: []relation.Tuple{imgTuple("c1"), imgTuple("c2")},
	}}}
	html, err = c.Compile(rate)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "scale of 1 (smallest) to 7 (largest)") {
		t.Errorf("rate HTML missing question: %s", html)
	}
	if n := strings.Count(html, `type="radio"`); n != 7 {
		t.Errorf("rate radios = %d, want 7", n)
	}
	if !strings.Contains(html, `class="context"`) {
		t.Error("rate HTML missing context sample")
	}
}

func TestCompileGenerative(t *testing.T) {
	c := NewCompiler(newTestRegistry(t))
	h := &HIT{ID: "h", Assignments: 5, Kind: GenerativeQ, Questions: []Question{{
		ID: "q", Kind: GenerativeQ, Task: "gender", Tuple: imgTuple("brad"), Fields: []string{"gender"},
	}}}
	html, err := c.Compile(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gender?", `value="Male"`, `value="Female"`, `value="UNKNOWN"`} {
		if !strings.Contains(html, want) {
			t.Errorf("generative HTML missing %q", want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	c := NewCompiler(newTestRegistry(t))
	// Unknown task.
	h := &HIT{ID: "h", Assignments: 5, Questions: []Question{{ID: "q", Kind: FilterQ, Task: "nope", Tuple: imgTuple("a")}}}
	if _, err := c.Compile(h); err == nil {
		t.Error("unknown task compiled")
	}
	// Wrong template type for kind.
	h = &HIT{ID: "h", Assignments: 5, Questions: []Question{{ID: "q", Kind: FilterQ, Task: "samePerson", Tuple: imgTuple("a")}}}
	if _, err := c.Compile(h); err == nil {
		t.Error("type-mismatched task compiled")
	}
	// Nil registry.
	if _, err := NewCompiler(nil).Compile(h); err == nil {
		t.Error("nil registry compiled")
	}
}
