// Package hit models Human Intelligence Tasks: the unit of work Qurk
// posts to a crowd marketplace. It implements the paper's HIT generation
// pipeline (§2.5–§2.6): batching (merging several tuples into one HIT and
// combining several tasks over one tuple), HIT groups, HTML compilation,
// and the content-addressed task cache.
package hit

import (
	"fmt"
	"sort"
	"strconv"

	"qurk/internal/relation"
)

// Kind identifies the interface a question renders as and therefore the
// shape of its answer.
type Kind uint8

const (
	// FilterQ is a yes/no question about one tuple.
	FilterQ Kind = iota
	// GenerativeQ asks for one or more field values about one tuple
	// (free text or radio). Feature extraction uses this kind.
	GenerativeQ
	// JoinPairQ shows one candidate pair with Yes/No buttons
	// (SimpleJoin; NaiveBatch merges several JoinPairQs into one HIT).
	JoinPairQ
	// JoinGridQ shows an r×s grid of items and asks the worker to click
	// matching pairs (SmartBatch).
	JoinGridQ
	// CompareQ shows a group of S items and asks for their total order
	// (comparison sort interface).
	CompareQ
	// RateQ shows one item (plus a context sample) and asks for a
	// Likert-scale rating (rating sort interface).
	RateQ
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case FilterQ:
		return "filter"
	case GenerativeQ:
		return "generative"
	case JoinPairQ:
		return "join-pair"
	case JoinGridQ:
		return "join-grid"
	case CompareQ:
		return "compare"
	case RateQ:
		return "rate"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Question is one unit of work inside a HIT. Exactly the payload fields
// implied by Kind are populated.
type Question struct {
	// ID uniquely identifies the question across a query's lifetime;
	// votes and cache entries key on it.
	ID string
	// Kind selects the interface.
	Kind Kind
	// Task is the task (UDF) name this question instantiates.
	Task string

	// Tuple is the subject for FilterQ, GenerativeQ, and RateQ.
	Tuple relation.Tuple
	// Left and Right are the pair for JoinPairQ.
	Left, Right relation.Tuple
	// LeftItems and RightItems are the grid columns for JoinGridQ.
	LeftItems, RightItems []relation.Tuple
	// Items is the comparison group for CompareQ.
	Items []relation.Tuple
	// Context is the random sample shown alongside RateQ items so
	// workers can calibrate the scale (paper §4.1.2).
	Context []relation.Tuple
	// Fields lists the generative fields requested (GenerativeQ).
	Fields []string
	// Scale is the Likert scale size for RateQ (paper uses 7).
	Scale int
}

// UnitCount returns how many "logical units of work" the question holds:
// pairs for grids, items for compare groups, 1 otherwise. The crowd
// simulator uses this to model worker effort and batch refusal.
func (q *Question) UnitCount() int {
	switch q.Kind {
	case JoinGridQ:
		return len(q.LeftItems) * len(q.RightItems)
	case CompareQ:
		return len(q.Items)
	default:
		return 1
	}
}

// CacheKey returns a stable content hash of the question (task, kind and
// all referenced tuples) for HIT result caching (paper §2.6: "first
// checks to see if the HIT is cached").
//
// The hash is canonical: tuples are hashed by their content
// (relation.Tuple.CanonicalKey — column order and alias qualifiers do
// not matter) and the generative field list is sorted before hashing,
// so the same logical question minted by two different queries (or by
// the same query over a differently-ordered projection) produces the
// same key. The cross-query answer store depends on this; keys that
// baked in incidental field ordering used to miss on map-iteration
// order. Item order inside CompareQ and JoinGridQ stays significant:
// their answers (Order permutations, Pairs cells) reference items by
// index, so reordering the items genuinely changes the question.
func (q *Question) CacheKey() uint64 {
	// Manual FNV-1a over exactly the bytes the fmt-based implementation
	// hashed; cache keys persist in the answer store, so the values must
	// never change. Covered against hash/fnv in cachekey_test.go.
	var buf [20]byte
	h := relation.HashSeed()
	h = relation.HashString(h, q.Task)
	h = relation.HashByte(h, '|')
	h = relation.HashBytes(h, strconv.AppendUint(buf[:0], uint64(q.Kind), 10))
	h = relation.HashByte(h, '|')
	writeTuple := func(t relation.Tuple) {
		if t.Schema() != nil {
			h = relation.HashBytes(h, strconv.AppendUint(buf[:0], t.CanonicalKey(), 16))
			h = relation.HashByte(h, ';')
		}
	}
	writeTuple(q.Tuple)
	writeTuple(q.Left)
	writeTuple(q.Right)
	for _, t := range q.LeftItems {
		writeTuple(t)
	}
	h = relation.HashByte(h, '/')
	for _, t := range q.RightItems {
		writeTuple(t)
	}
	h = relation.HashByte(h, '/')
	for _, t := range q.Items {
		writeTuple(t)
	}
	fields := q.Fields
	if len(fields) > 1 && !sort.StringsAreSorted(fields) {
		fields = append([]string(nil), fields...)
		sort.Strings(fields)
	}
	h = relation.HashByte(h, '|')
	for i, f := range fields {
		if i > 0 {
			h = relation.HashByte(h, ',')
		}
		h = relation.HashString(h, f)
	}
	h = relation.HashByte(h, '|')
	h = relation.HashBytes(h, strconv.AppendInt(buf[:0], int64(q.Scale), 10))
	return h
}

// HIT is a batched set of questions posted as one marketplace unit.
type HIT struct {
	// ID uniquely identifies the HIT.
	ID string
	// GroupID ties HITs from the same operator into one HIT group
	// (paper §2.6: Turkers gravitate to groups with many HITs).
	GroupID string
	// Kind is the shared kind of all questions in the HIT.
	Kind Kind
	// Questions are the merged batch.
	Questions []Question
	// Assignments is the number of distinct workers requested
	// (paper default: 5).
	Assignments int
	// RewardCents is the payment per assignment (paper: 1¢ plus the
	// 0.5¢ Amazon commission accounted in internal/cost).
	RewardCents float64
}

// Units returns the total logical units of work in the HIT.
func (h *HIT) Units() int {
	n := 0
	for i := range h.Questions {
		n += h.Questions[i].UnitCount()
	}
	return n
}

// Validate checks HIT invariants.
func (h *HIT) Validate() error {
	if h.ID == "" {
		return fmt.Errorf("hit: missing ID")
	}
	if len(h.Questions) == 0 {
		return fmt.Errorf("hit %s: no questions", h.ID)
	}
	if h.Assignments <= 0 {
		return fmt.Errorf("hit %s: assignments must be positive", h.ID)
	}
	for i := range h.Questions {
		q := &h.Questions[i]
		if q.ID == "" {
			return fmt.Errorf("hit %s: question %d missing ID", h.ID, i)
		}
		switch q.Kind {
		case JoinGridQ:
			if len(q.LeftItems) == 0 || len(q.RightItems) == 0 {
				return fmt.Errorf("hit %s: grid question %s has empty side", h.ID, q.ID)
			}
		case CompareQ:
			if len(q.Items) < 2 {
				return fmt.Errorf("hit %s: compare question %s has <2 items", h.ID, q.ID)
			}
		case RateQ:
			if q.Scale < 2 {
				return fmt.Errorf("hit %s: rate question %s has scale %d", h.ID, q.ID, q.Scale)
			}
		}
	}
	return nil
}

// Answer is a worker's response to one question.
type Answer struct {
	// QuestionID echoes Question.ID.
	QuestionID string
	// Bool is the response for FilterQ and JoinPairQ.
	Bool bool
	// Fields maps generative field name to the (raw, un-normalized)
	// response for GenerativeQ.
	Fields map[string]string
	// Pairs lists matched (leftIndex, rightIndex) grid cells for
	// JoinGridQ. Empty means the worker checked "no matches".
	Pairs [][2]int
	// Order is the worker's ranking for CompareQ: a permutation of
	// item indices from least to most.
	Order []int
	// Rating is the Likert response for RateQ (1..Scale).
	Rating int
}

// Assignment is one worker's completed pass over one HIT.
type Assignment struct {
	// ID uniquely identifies the assignment.
	ID string
	// HITID references the HIT.
	HITID string
	// WorkerID identifies the (simulated) worker.
	WorkerID string
	// Answers holds one answer per question, in question order.
	Answers []Answer
	// SubmitHours is the completion time in hours since the HIT group
	// was posted (drives the paper's Fig. 4 latency percentiles).
	SubmitHours float64
}

// Group is a posted HIT group plus bookkeeping the marketplace returns.
type Group struct {
	ID   string
	HITs []*HIT
}

// TotalHITs is a convenience for cost accounting.
func (g *Group) TotalHITs() int { return len(g.HITs) }

// SortAssignments orders assignments deterministically (by HIT then
// worker), which keeps downstream EM combiners reproducible.
func SortAssignments(as []Assignment) {
	sort.Slice(as, func(i, j int) bool {
		if as[i].HITID != as[j].HITID {
			return as[i].HITID < as[j].HITID
		}
		return as[i].WorkerID < as[j].WorkerID
	})
}

// ForEachAnswer routes every completed assignment's answers back to
// their questions: visit is called once per (question, worker, answer)
// triple, in assignment order, skipping assignments for unknown HITs
// and answers beyond a HIT's question count. Four operators collect
// votes from assignments; sharing the routing loop keeps their
// truncation and unknown-HIT handling from drifting apart.
func ForEachAnswer(hits []*HIT, assignments []Assignment, visit func(q *Question, workerID string, ans Answer)) {
	qByHIT := make(map[string]*HIT, len(hits))
	for _, h := range hits {
		qByHIT[h.ID] = h
	}
	for ai := range assignments {
		a := &assignments[ai]
		h := qByHIT[a.HITID]
		if h == nil {
			continue
		}
		for i := range a.Answers {
			if i >= len(h.Questions) {
				break
			}
			visit(&h.Questions[i], a.WorkerID, a.Answers[i])
		}
	}
}
