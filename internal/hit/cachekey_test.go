package hit

import (
	"testing"

	"qurk/internal/relation"
)

func TestCacheKeyNormalizesFieldOrder(t *testing.T) {
	sch := relation.MustSchema(relation.Column{Name: "img", Kind: relation.KindText})
	tp := relation.MustTuple(sch, relation.Text("x.jpg"))
	a := Question{ID: "a", Kind: GenerativeQ, Task: "extract", Tuple: tp,
		Fields: []string{"gender", "hair", "age"}}
	b := Question{ID: "b", Kind: GenerativeQ, Task: "extract", Tuple: tp,
		Fields: []string{"age", "gender", "hair"}}
	if a.CacheKey() != b.CacheKey() {
		t.Fatal("field order must not change the cache key")
	}
	c := Question{ID: "c", Kind: GenerativeQ, Task: "extract", Tuple: tp,
		Fields: []string{"age", "gender"}}
	if a.CacheKey() == c.CacheKey() {
		t.Fatal("different field sets must produce different keys")
	}
}

func TestCacheKeyNormalizesTupleColumnOrder(t *testing.T) {
	a := relation.MustSchema(
		relation.Column{Name: "name", Kind: relation.KindText},
		relation.Column{Name: "img", Kind: relation.KindText})
	b := relation.MustSchema(
		relation.Column{Name: "x.img", Kind: relation.KindText},
		relation.Column{Name: "x.name", Kind: relation.KindText})
	qa := Question{ID: "a", Kind: FilterQ, Task: "t",
		Tuple: relation.MustTuple(a, relation.Text("alice"), relation.Text("alice.jpg"))}
	qb := Question{ID: "b", Kind: FilterQ, Task: "t",
		Tuple: relation.MustTuple(b, relation.Text("alice.jpg"), relation.Text("alice"))}
	if qa.CacheKey() != qb.CacheKey() {
		t.Fatal("cache key must be content-addressed, not projection-ordered")
	}
}

func TestCacheKeyKeepsCompareItemOrderSignificant(t *testing.T) {
	// Compare answers reference items by index, so reordering the group
	// is a genuinely different question.
	sch := relation.MustSchema(relation.Column{Name: "img", Kind: relation.KindText})
	x := relation.MustTuple(sch, relation.Text("x"))
	y := relation.MustTuple(sch, relation.Text("y"))
	a := Question{ID: "a", Kind: CompareQ, Task: "t", Items: []relation.Tuple{x, y}}
	b := Question{ID: "b", Kind: CompareQ, Task: "t", Items: []relation.Tuple{y, x}}
	if a.CacheKey() == b.CacheKey() {
		t.Fatal("compare item order must stay significant")
	}
}

func TestCacheKeySeparatesTaskAndKind(t *testing.T) {
	sch := relation.MustSchema(relation.Column{Name: "img", Kind: relation.KindText})
	tp := relation.MustTuple(sch, relation.Text("x.jpg"))
	a := Question{ID: "a", Kind: FilterQ, Task: "t1", Tuple: tp}
	b := Question{ID: "b", Kind: FilterQ, Task: "t2", Tuple: tp}
	c := Question{ID: "c", Kind: RateQ, Task: "t1", Tuple: tp, Scale: 7}
	if a.CacheKey() == b.CacheKey() || a.CacheKey() == c.CacheKey() {
		t.Fatal("task and kind must distinguish keys")
	}
}
