package hit

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"testing"

	"qurk/internal/relation"
)

// legacyCacheKey is the original fmt/hash-fnv CacheKey, kept as the
// reference the manual fold must keep matching: cache keys persist in
// the cross-query answer store, so the values can never drift.
func legacyCacheKey(q *Question) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|", q.Task, q.Kind)
	writeTuple := func(t relation.Tuple) {
		if t.Schema() != nil {
			fmt.Fprintf(h, "%x;", t.CanonicalKey())
		}
	}
	writeTuple(q.Tuple)
	writeTuple(q.Left)
	writeTuple(q.Right)
	for _, t := range q.LeftItems {
		writeTuple(t)
	}
	fmt.Fprint(h, "/")
	for _, t := range q.RightItems {
		writeTuple(t)
	}
	fmt.Fprint(h, "/")
	for _, t := range q.Items {
		writeTuple(t)
	}
	fields := q.Fields
	if len(fields) > 1 && !sort.StringsAreSorted(fields) {
		fields = append([]string(nil), fields...)
		sort.Strings(fields)
	}
	fmt.Fprintf(h, "|%s|%d", strings.Join(fields, ","), q.Scale)
	return h.Sum64()
}

func TestCacheKeyMatchesLegacyFNV(t *testing.T) {
	sch := relation.MustSchema(
		relation.Column{Name: "name", Kind: relation.KindText},
		relation.Column{Name: "age", Kind: relation.KindInt})
	x := relation.MustTuple(sch, relation.Text("x"), relation.Int(41))
	y := relation.MustTuple(sch, relation.Text("y"), relation.Int(-7))
	qs := []Question{
		{ID: "a", Kind: FilterQ, Task: "isFemale", Tuple: x},
		{ID: "b", Kind: GenerativeQ, Task: "extract", Tuple: y,
			Fields: []string{"hair", "age", "gender"}},
		{ID: "c", Kind: JoinPairQ, Task: "samePerson", Left: x, Right: y},
		{ID: "d", Kind: JoinGridQ, Task: "samePerson",
			LeftItems: []relation.Tuple{x}, RightItems: []relation.Tuple{y, x}},
		{ID: "e", Kind: CompareQ, Task: "squareSort", Items: []relation.Tuple{y, x}},
		{ID: "f", Kind: RateQ, Task: "squareSort", Tuple: x, Scale: 7},
		{ID: "g", Kind: FilterQ, Task: ""},
	}
	for _, q := range qs {
		q := q
		if got, want := q.CacheKey(), legacyCacheKey(&q); got != want {
			t.Errorf("question %s: CacheKey %#x, legacy %#x", q.ID, got, want)
		}
	}
}

func TestCacheKeyNormalizesFieldOrder(t *testing.T) {
	sch := relation.MustSchema(relation.Column{Name: "img", Kind: relation.KindText})
	tp := relation.MustTuple(sch, relation.Text("x.jpg"))
	a := Question{ID: "a", Kind: GenerativeQ, Task: "extract", Tuple: tp,
		Fields: []string{"gender", "hair", "age"}}
	b := Question{ID: "b", Kind: GenerativeQ, Task: "extract", Tuple: tp,
		Fields: []string{"age", "gender", "hair"}}
	if a.CacheKey() != b.CacheKey() {
		t.Fatal("field order must not change the cache key")
	}
	c := Question{ID: "c", Kind: GenerativeQ, Task: "extract", Tuple: tp,
		Fields: []string{"age", "gender"}}
	if a.CacheKey() == c.CacheKey() {
		t.Fatal("different field sets must produce different keys")
	}
}

func TestCacheKeyNormalizesTupleColumnOrder(t *testing.T) {
	a := relation.MustSchema(
		relation.Column{Name: "name", Kind: relation.KindText},
		relation.Column{Name: "img", Kind: relation.KindText})
	b := relation.MustSchema(
		relation.Column{Name: "x.img", Kind: relation.KindText},
		relation.Column{Name: "x.name", Kind: relation.KindText})
	qa := Question{ID: "a", Kind: FilterQ, Task: "t",
		Tuple: relation.MustTuple(a, relation.Text("alice"), relation.Text("alice.jpg"))}
	qb := Question{ID: "b", Kind: FilterQ, Task: "t",
		Tuple: relation.MustTuple(b, relation.Text("alice.jpg"), relation.Text("alice"))}
	if qa.CacheKey() != qb.CacheKey() {
		t.Fatal("cache key must be content-addressed, not projection-ordered")
	}
}

func TestCacheKeyKeepsCompareItemOrderSignificant(t *testing.T) {
	// Compare answers reference items by index, so reordering the group
	// is a genuinely different question.
	sch := relation.MustSchema(relation.Column{Name: "img", Kind: relation.KindText})
	x := relation.MustTuple(sch, relation.Text("x"))
	y := relation.MustTuple(sch, relation.Text("y"))
	a := Question{ID: "a", Kind: CompareQ, Task: "t", Items: []relation.Tuple{x, y}}
	b := Question{ID: "b", Kind: CompareQ, Task: "t", Items: []relation.Tuple{y, x}}
	if a.CacheKey() == b.CacheKey() {
		t.Fatal("compare item order must stay significant")
	}
}

func TestCacheKeySeparatesTaskAndKind(t *testing.T) {
	sch := relation.MustSchema(relation.Column{Name: "img", Kind: relation.KindText})
	tp := relation.MustTuple(sch, relation.Text("x.jpg"))
	a := Question{ID: "a", Kind: FilterQ, Task: "t1", Tuple: tp}
	b := Question{ID: "b", Kind: FilterQ, Task: "t2", Tuple: tp}
	c := Question{ID: "c", Kind: RateQ, Task: "t1", Tuple: tp, Scale: 7}
	if a.CacheKey() == b.CacheKey() || a.CacheKey() == c.CacheKey() {
		t.Fatal("task and kind must distinguish keys")
	}
}
