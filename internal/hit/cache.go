package hit

import (
	"sync"
)

// Cache memoizes completed question results so re-running a query (or a
// later operator re-asking an identical question) does not re-post work
// to the crowd — the "Task Cache" box in the paper's architecture
// (Fig. 1), in the spirit of TurKit's crash-and-rerun caching.
//
// The cache is keyed by Question.CacheKey (task + kind + input tuples)
// and stores the raw per-worker answers so combiners can still be
// swapped after the fact.
type Cache struct {
	mu      sync.RWMutex
	entries map[uint64][]CachedAnswer
	hits    int
	misses  int
}

// CachedAnswer is one worker's answer to a cached question.
type CachedAnswer struct {
	WorkerID string
	Answer   Answer
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[uint64][]CachedAnswer)}
}

// Lookup returns the cached answers for a question, if present.
func (c *Cache) Lookup(q *Question) ([]CachedAnswer, bool) {
	key := q.CacheKey()
	c.mu.Lock()
	defer c.mu.Unlock()
	got, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return got, ok
}

// Store records answers for a question, replacing any prior entry.
func (c *Cache) Store(q *Question, answers []CachedAnswer) {
	key := q.CacheKey()
	cp := make([]CachedAnswer, len(answers))
	copy(cp, answers)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = cp
}

// Stats reports lookup hits and misses since creation.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// Len returns the number of cached questions.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
