package hit

import (
	"fmt"
	"strconv"
)

// This file implements the paper's two batching optimizations (§2.6):
//
//   - merging: one HIT applies a given task to multiple tuples
//     ("we generate a single HIT that applies a given task (operator)
//     to multiple tuples")
//   - combining: one HIT applies several tasks to the same tuple
//     ("generally only filters and generative tasks")
//
// plus the join- and sort-specific batch layouts from §3.1 and §4.1.

// Builder mints HITs with sequential IDs inside one group.
type Builder struct {
	groupID     string
	assignments int
	rewardCents float64
	nextHIT     int
	nextQ       int
}

// NewBuilder creates a builder for one HIT group. assignments is the
// number of workers per HIT (paper default 5); rewardCents the pay per
// assignment (paper: 1¢).
func NewBuilder(groupID string, assignments int, rewardCents float64) *Builder {
	return &Builder{groupID: groupID, assignments: assignments, rewardCents: rewardCents}
}

// MintID formats "<group>/<tag><n zero-padded to width digits>",
// byte-identical to fmt.Sprintf("%s/%s%0*d", group, tag, width, n) but
// in one allocation. Counter IDs are minted per question and per
// simulated assignment, so the mint is hot in simulator-bound profiles.
func MintID(group, tag string, n, width int) string {
	var num [20]byte
	d := strconv.AppendInt(num[:0], int64(n), 10)
	pad := width - len(d)
	if pad < 0 {
		pad = 0
	}
	b := make([]byte, 0, len(group)+1+len(tag)+pad+len(d))
	b = append(b, group...)
	b = append(b, '/')
	b = append(b, tag...)
	for ; pad > 0; pad-- {
		b = append(b, '0')
	}
	b = append(b, d...)
	return string(b)
}

// newHIT allocates an empty HIT of the given kind.
func (b *Builder) newHIT(kind Kind) *HIT {
	b.nextHIT++
	return &HIT{
		ID:          MintID(b.groupID, "hit", b.nextHIT, 4),
		GroupID:     b.groupID,
		Kind:        kind,
		Assignments: b.assignments,
		RewardCents: b.rewardCents,
	}
}

// QuestionID mints a fresh question ID. Exposed so operators can create
// stable IDs tied to their own bookkeeping.
func (b *Builder) QuestionID() string {
	b.nextQ++
	return MintID(b.groupID, "q", b.nextQ, 5)
}

// Merge batches a flat list of single-subject questions (FilterQ,
// GenerativeQ, RateQ, JoinPairQ, CompareQ) into HITs of at most
// batchSize questions each — the paper's merging optimization. A
// batchSize ≤ 1 yields one question per HIT (the unbatched interfaces).
func (b *Builder) Merge(questions []Question, batchSize int) ([]*HIT, error) {
	if len(questions) == 0 {
		return nil, nil
	}
	if batchSize < 1 {
		batchSize = 1
	}
	kind := questions[0].Kind
	hits := make([]*HIT, 0, (len(questions)+batchSize-1)/batchSize)
	for start := 0; start < len(questions); start += batchSize {
		end := start + batchSize
		if end > len(questions) {
			end = len(questions)
		}
		h := b.newHIT(kind)
		h.Questions = make([]Question, 0, end-start)
		for _, q := range questions[start:end] {
			if q.Kind != kind {
				return nil, fmt.Errorf("hit: cannot merge %s question into %s HIT", q.Kind, kind)
			}
			if q.ID == "" {
				q.ID = b.QuestionID()
			}
			h.Questions = append(h.Questions, q)
		}
		if err := h.Validate(); err != nil {
			return nil, err
		}
		hits = append(hits, h)
	}
	return hits, nil
}

// CombinedQuestion folds several tasks' questions over the *same*
// tuple into one composite generative question with the given ID — the
// paper's combining optimization (§3.3.4). All inputs must be
// GenerativeQ over one tuple; the composite carries the union of
// fields and the concatenated task names, and per-field answers route
// back by field name. Exported so streaming callers can mint composite
// IDs tied to their own bookkeeping instead of the builder's counter.
func CombinedQuestion(id string, qs []Question) (Question, error) {
	if len(qs) == 0 {
		return Question{}, fmt.Errorf("hit: no questions to combine")
	}
	first := qs[0]
	comp := Question{
		ID:    id,
		Kind:  GenerativeQ,
		Tuple: first.Tuple,
	}
	names := make([]string, 0, len(qs))
	seen := map[string]bool{}
	for _, q := range qs {
		if q.Kind != GenerativeQ {
			return Question{}, fmt.Errorf("hit: combining supports generative tasks only, got %s", q.Kind)
		}
		if q.Tuple.Schema() == nil || first.Tuple.Schema() == nil || q.Tuple.Key() != first.Tuple.Key() {
			return Question{}, fmt.Errorf("hit: combined questions must target the same tuple")
		}
		names = append(names, q.Task)
		for _, f := range q.Fields {
			if seen[f] {
				return Question{}, fmt.Errorf("hit: combined tasks share field %q", f)
			}
			seen[f] = true
			comp.Fields = append(comp.Fields, f)
		}
	}
	comp.Task = joinNames(names)
	return comp, nil
}

// Combine batches several tasks over the *same* tuple into one composite
// generative question per tuple — the paper's combining optimization used
// by feature extraction ("we asked workers to provide all three features
// at once", §3.3.4). questionsPerTuple[i] lists each task's question for
// tuple i; see CombinedQuestion for the composite's shape.
func (b *Builder) Combine(questionsPerTuple [][]Question, mergeBatch int) ([]*HIT, error) {
	var combined []Question
	for i, qs := range questionsPerTuple {
		if len(qs) == 0 {
			return nil, fmt.Errorf("hit: tuple %d has no questions to combine", i)
		}
		comp, err := CombinedQuestion(b.QuestionID(), qs)
		if err != nil {
			return nil, err
		}
		combined = append(combined, comp)
	}
	return b.Merge(combined, mergeBatch)
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "+"
		}
		out += n
	}
	return out
}

// GridHITs lays out a smart-batch join: left items in columns of r, right
// items in columns of s, one HIT per (r-chunk × s-chunk) — paper §3.1.3:
// "For r images in the first column and s in the second column, we must
// evaluate |R||S|/(rs) HITs."
func (b *Builder) GridHITs(left, right []Question, r, s int) ([]*HIT, error) {
	if r < 1 || s < 1 {
		return nil, fmt.Errorf("hit: grid dimensions must be ≥1 (got %d×%d)", r, s)
	}
	if len(left) == 0 || len(right) == 0 {
		return nil, nil
	}
	var hits []*HIT
	for l := 0; l < len(left); l += r {
		lend := l + r
		if lend > len(left) {
			lend = len(left)
		}
		for g := 0; g < len(right); g += s {
			gend := g + s
			if gend > len(right) {
				gend = len(right)
			}
			h := b.newHIT(JoinGridQ)
			q := Question{
				ID:   b.QuestionID(),
				Kind: JoinGridQ,
				Task: left[l].Task,
			}
			for _, lq := range left[l:lend] {
				q.LeftItems = append(q.LeftItems, lq.Tuple)
			}
			for _, rq := range right[g:gend] {
				q.RightItems = append(q.RightItems, rq.Tuple)
			}
			h.Questions = []Question{q}
			if err := h.Validate(); err != nil {
				return nil, err
			}
			hits = append(hits, h)
		}
	}
	return hits, nil
}
