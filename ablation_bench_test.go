package qurk

// Ablation benchmarks: isolate each design choice the paper's evaluation
// leans on and measure the system with it removed or swept. Reported via
// custom metrics, like bench_test.go.

import (
	"fmt"
	"testing"

	"qurk/internal/adaptive"
	"qurk/internal/combine"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/join"
)

// BenchmarkAblationCombiner sweeps the spam fraction and reports the
// true-positive accuracy of MajorityVote vs QualityAdjust — the design
// reason Qurk ships the EM combiner at all (§3.3.2).
func BenchmarkAblationCombiner(b *testing.B) {
	for _, spam := range []float64{0.05, 0.2, 0.35} {
		b.Run(fmt.Sprintf("spam=%.2f", spam), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 15, Seed: 5})
				cfg := crowd.DefaultConfig(5)
				cfg.Population.SpamFraction = spam
				m := crowd.NewSimMarket(cfg, d.Oracle())
				left, right := d.Celeb.Qualify("c"), d.Photos.Qualify("p")
				res, err := join.RunCross(left, right, dataset.SamePersonTask(),
					join.Options{Algorithm: join.Naive, BatchSize: 10, Assignments: 7}, m)
				if err != nil {
					b.Fatal(err)
				}
				if i > 0 {
					continue
				}
				mv, _ := combine.MajorityVote{}.Combine(res.Votes)
				qa := combine.NewQualityAdjust(combine.DefaultQAConfig())
				qad, err := qa.Combine(res.Votes)
				if err != nil {
					b.Fatal(err)
				}
				tpMV, tpQA := 0, 0
				for _, p := range join.CrossPairs(left, right) {
					if !d.IsMatch(p.Left, p.Right) {
						continue
					}
					if mv[p.Key()].Value == "yes" {
						tpMV++
					}
					if qad[p.Key()].Value == "yes" {
						tpQA++
					}
				}
				b.ReportMetric(float64(tpMV)/15, "TP_MV")
				b.ReportMetric(float64(tpQA)/15, "TP_QA")
			}
		})
	}
}

// BenchmarkAblationFeatureCount reports join HITs as POSSIBLY features
// are added one at a time — the marginal value of each filter (§3.2).
func BenchmarkAblationFeatureCount(b *testing.B) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 20, Seed: 9})
	left, right := d.Celeb.Qualify("c"), d.Photos.Qualify("p")
	all := dataset.CelebrityFeatures()
	for nf := 0; nf <= len(all); nf++ {
		b.Run(fmt.Sprintf("features=%d", nf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := crowd.NewSimMarket(crowd.DefaultConfig(9), d.Oracle())
				var pairs []join.Pair
				extractHITs := 0
				if nf == 0 {
					pairs = join.CrossPairs(left, right)
				} else {
					feats := all[:nf]
					eo := join.ExtractOptions{Combined: true, BatchSize: 4, Assignments: 5, GroupID: "abl-l"}
					le, err := join.Extract(left, feats, eo, m)
					if err != nil {
						b.Fatal(err)
					}
					eo.GroupID = "abl-r"
					re, err := join.Extract(right, feats, eo, m)
					if err != nil {
						b.Fatal(err)
					}
					names := make([]string, nf)
					for j, f := range feats {
						names[j] = f.Field
					}
					pairs = join.FilteredPairs(left, right, le, re, names)
					extractHITs = le.HITCount + re.HITCount
				}
				if i == 0 {
					joinHITs := (len(pairs) + 4) / 5 // naive-5
					b.ReportMetric(float64(len(pairs)), "candidate_pairs")
					b.ReportMetric(float64(extractHITs+joinHITs), "total_HITs")
				}
			}
		})
	}
}

// BenchmarkAblationAdaptiveVotes compares fixed-11-vote filtering with
// the adaptive allocator at equal accuracy targets.
func BenchmarkAblationAdaptiveVotes(b *testing.B) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 30, Seed: 13})
	for i := 0; i < b.N; i++ {
		m := crowd.NewSimMarket(crowd.DefaultConfig(13), d.Oracle())
		res, err := adaptive.RunAdaptiveFilter(d.Celeb, dataset.IsFemaleTask(),
			adaptive.VoteConfig{MinVotes: 3, MaxVotes: 11, Step: 2, Confidence: 0.92}, m)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.TotalAssignments), "adaptive_assignments")
			b.ReportMetric(float64(30*11), "fixed11_assignments")
		}
	}
}

// BenchmarkAblationBatchDepth sweeps the naive join batch size and
// reports the single-worker TP rate — the quality price of batching
// that Figures 3 and 4 trade against cost.
func BenchmarkAblationBatchDepth(b *testing.B) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 15, Seed: 17})
	left, right := d.Celeb.Qualify("c"), d.Photos.Qualify("p")
	for _, batch := range []int{1, 5, 10, 20} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := crowd.NewSimMarket(crowd.DefaultConfig(17), d.Oracle())
				res, err := join.RunCross(left, right, dataset.SamePersonTask(),
					join.Options{Algorithm: join.Naive, BatchSize: batch, Assignments: 5}, m)
				if err != nil {
					b.Fatal(err)
				}
				if i > 0 {
					continue
				}
				var pos, yes float64
				for _, v := range res.Votes {
					var li, ri int
					fmt.Sscanf(v.Question, "pair:%x|%x", &li, &ri)
					_ = li
					_ = ri
				}
				// Single-worker TP: fraction of yes votes on true pairs.
				truth := map[string]bool{}
				for _, p := range join.CrossPairs(left, right) {
					truth[p.Key()] = d.IsMatch(p.Left, p.Right)
				}
				for _, v := range res.Votes {
					if truth[v.Question] {
						pos++
						if v.Value == "yes" {
							yes++
						}
					}
				}
				if pos > 0 {
					b.ReportMetric(yes/pos, "single_worker_TP")
				}
				b.ReportMetric(float64(res.HITCount), "HITs")
			}
		})
	}
}

// BenchmarkAblationCacheHits measures the task cache: a re-run of the
// same filter answers entirely from cache with zero new HITs (§2.6).
func BenchmarkAblationCacheHits(b *testing.B) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 20, Seed: 19})
	for i := 0; i < b.N; i++ {
		m := crowd.NewSimMarket(crowd.DefaultConfig(19), d.Oracle())
		eng := NewEngine(m, Options{})
		eng.Catalog.Register(d.Celeb)
		eng.Library.MustRegister(IsFemaleTask())
		q := `SELECT c.name FROM celeb AS c WHERE isFemale(c.img)`
		if _, _, err := RunQuery(eng, q); err != nil {
			b.Fatal(err)
		}
		_, stats2, err := RunQuery(eng, q)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(stats2.TotalHITs()), "rerun_HITs")
			hits, misses := eng.Cache.Stats()
			b.ReportMetric(float64(hits), "cache_hits")
			b.ReportMetric(float64(misses), "cache_misses")
		}
	}
}
