package qurk

// Pipeline benchmarks for the streaming Volcano executor: end-to-end
// crowd makespan (on the simulator's virtual clock) with chunked
// streaming versus the materializing baseline (one monolithic HIT
// group per operator), and the HIT savings of a LIMIT short-circuit.
// The headline quantities are custom metrics; ns/op measures the
// simulator itself.

import (
	"testing"
)

func pipelineEngine(chunk int) (*Engine, string) {
	d := NewCelebrities(CelebrityConfig{N: 48, Seed: 33})
	m := NewSimMarket(DefaultMarketConfig(33), d.Oracle())
	e := NewEngine(m, Options{JoinAlgorithm: NaiveJoin, JoinBatch: 5, StreamChunkHITs: chunk, Seed: 33})
	e.Catalog.Register(d.Celeb)
	e.Catalog.Register(d.Photos)
	e.Library.MustRegister(IsFemaleTask())
	e.Library.MustRegister(SamePersonTask())
	return e, `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
WHERE isFemale(c.img)`
}

// BenchmarkPipelineStreamedMakespan runs a crowd filter feeding a
// crowd join with chunked streaming: the join posts pair HITs off
// early filter chunks while later chunks are still in flight.
// Reported metrics: pipelined end-to-end makespan, the materializing
// baseline, and the resulting speedup.
func BenchmarkPipelineStreamedMakespan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eS, src := pipelineEngine(4)
		_, streamed, err := RunQuery(eS, src)
		if err != nil {
			b.Fatal(err)
		}
		eM, _ := pipelineEngine(1 << 20)
		_, mono, err := RunQuery(eM, src)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(streamed.PipelineMakespanHours, "streamed_makespan_h")
			b.ReportMetric(mono.PipelineMakespanHours, "materialized_makespan_h")
			if streamed.PipelineMakespanHours > 0 {
				b.ReportMetric(mono.PipelineMakespanHours/streamed.PipelineMakespanHours, "makespan_speedup_x")
			}
			b.ReportMetric(float64(streamed.TotalHITs()), "HITs")
		}
	}
}

// BenchmarkPipelineLimitSavings measures the LIMIT short-circuit: the
// streaming executor stops posting filter HITs once k rows are out,
// where full materialization pays ceil(N/batch) regardless.
func BenchmarkPipelineLimitSavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := NewCelebrities(CelebrityConfig{N: 200, Seed: 35})
		m := NewSimMarket(DefaultMarketConfig(35), d.Oracle())
		e := NewEngine(m, Options{StreamChunkHITs: 4, Seed: 35})
		e.Catalog.Register(d.Celeb)
		e.Library.MustRegister(IsFemaleTask())
		_, stats, err := RunQuery(e, `SELECT c.name FROM celeb AS c WHERE isFemale(c.img) LIMIT 3`)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			full := 40.0 // ceil(200/5) HITs under full materialization
			b.ReportMetric(float64(stats.TotalHITs()), "limit_HITs")
			b.ReportMetric(full, "materialized_HITs")
			if stats.TotalHITs() > 0 {
				b.ReportMetric(full/float64(stats.TotalHITs()), "HIT_savings_x")
			}
		}
	}
}
