// Command adaptivebudget demonstrates the paper's §6 "discussion and
// future work" mechanisms, which this library implements:
//
//  1. adaptive per-question vote allocation (spend votes only where the
//     posterior is uncertain),
//  2. binary search for the largest batch size workers will accept,
//  3. whole-plan budget allocation across operators, and
//  4. banning spammers identified by QualityAdjust's worker-quality
//     scores.
package main

import (
	"fmt"
	"log"
	"sort"

	"qurk"
)

func main() {
	celebs := qurk.NewCelebrities(qurk.CelebrityConfig{N: 40, Seed: 21})
	market := qurk.NewSimMarket(qurk.DefaultMarketConfig(21), celebs.Oracle())

	// --- 1. Adaptive votes vs fixed votes.
	fmt.Println("== 1. Adaptive vote allocation (Sec 2.1, Sec 6)")
	adaptiveRes, err := qurk.RunAdaptiveFilter(celebs.Celeb, qurk.IsFemaleTask(),
		qurk.VoteConfig{MinVotes: 3, MaxVotes: 11, Step: 2, Confidence: 0.92}, market)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i := 0; i < celebs.Celeb.Len(); i++ {
		truth, _ := celebs.Oracle().FilterTruth("isFemale", celebs.Celeb.Row(i))
		if adaptiveRes.Decisions[i] == truth {
			correct++
		}
	}
	fixed := celebs.Celeb.Len() * 11
	fmt.Printf("accuracy %d/%d with %d assignments in %d rounds (fixed-11 baseline: %d assignments, %.0f%% more)\n\n",
		correct, celebs.Celeb.Len(), adaptiveRes.TotalAssignments, adaptiveRes.Rounds,
		fixed, 100*(float64(fixed)/float64(adaptiveRes.TotalAssignments)-1))

	// --- 2. Batch-size binary search.
	fmt.Println("== 2. Batch-size binary search (Sec 6 'Choosing Batch Size')")
	probe := qurk.FilterProbe(celebs.Celeb, qurk.IsFemaleTask(), 5, market)
	best, steps, err := qurk.TuneBatchSize(probe, qurk.BatchTuneConfig{Min: 1, Max: 64, MinAccuracy: 0.75, MaxProbes: 7})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range steps {
		status := fmt.Sprintf("agreement %.2f", s.Result.Accuracy)
		if s.Result.Refused {
			status = "REFUSED by workers"
		}
		fmt.Printf("probe batch %-3d -> %s\n", s.Batch, status)
	}
	fmt.Printf("chosen batch size: %d\n\n", best)

	// --- 3. Whole-plan budget allocation.
	fmt.Println("== 3. Whole-plan budget allocation (Sec 6)")
	stages := []qurk.BudgetStage{
		{Name: "numInScene filter", HITs: 43, Levels: []int{1, 3, 5, 7}, Quality: []float64{0.75, 0.9, 0.96, 0.98}},
		{Name: "inScene join (smart 5x5)", HITs: 67, Levels: []int{1, 3, 5, 7}, Quality: []float64{0.7, 0.85, 0.93, 0.95}},
		{Name: "quality sort (rate)", HITs: 22, Levels: []int{1, 3, 5, 7}, Quality: []float64{0.6, 0.78, 0.86, 0.9}},
	}
	for _, budget := range []float64{3, 8, 15} {
		plan, err := qurk.AllocateBudget(stages, budget)
		if err != nil {
			fmt.Printf("budget $%-5.2f -> %v\n", budget, err)
			continue
		}
		fmt.Printf("budget $%-5.2f -> assignments %v, spend $%.2f, min stage quality %.2f\n",
			budget, plan.Assignments, plan.Dollars, plan.Quality)
	}
	fmt.Println()

	// --- 4. Spammer identification and banning.
	fmt.Println("== 4. QualityAdjust spammer banning (Sec 6 'Worker Selection')")
	left, right := celebs.Celeb.Qualify("c"), celebs.Photos.Qualify("p")
	jr, err := qurk.RunCrossJoin(left, right, qurk.SamePersonTask(),
		qurk.JoinOptions{Algorithm: qurk.NaiveJoin, BatchSize: 10, Assignments: 5}, market)
	if err != nil {
		log.Fatal(err)
	}
	qa := qurk.NewQualityAdjust(qurk.DefaultQAConfig())
	if _, err := qa.Combine(jr.Votes); err != nil {
		log.Fatal(err)
	}
	// Ban the bottom decile of quality scores (an absolute threshold is
	// brittle on skewed corpora where "always no" is nearly as cheap as
	// competence; relative ranking still isolates the spammers).
	quality := qa.WorkerQuality()
	workers := make([]string, 0, len(quality))
	for w := range quality {
		workers = append(workers, w)
	}
	sort.Slice(workers, func(i, j int) bool { return quality[workers[i]] < quality[workers[j]] })
	toBan := len(workers) / 10
	// The moderation helper works against either backend: here it bans
	// in the simulated population; on MTurk the same call would issue
	// CreateWorkerBlock requests.
	if _, err := qurk.EnforceWorkerBans(market, workers[:toBan], "bottom-decile quality score"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QualityAdjust scored %d workers; banned the bottom %d (quality %.3f..%.3f)\n",
		len(workers), toBan, quality[workers[0]], quality[workers[toBan-1]])
	fmt.Printf("banned workers will never be sampled again (%d now excluded)\n",
		market.Population().BannedCount())
}
