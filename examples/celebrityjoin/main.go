// Command celebrityjoin reproduces the paper's headline cost narrative
// (§3.4): joining celebrity profile photos with candid photos drops from
// $67.50 (naive cross product) to around $3 (feature filtering plus
// batching) without losing accuracy.
package main

import (
	"fmt"
	"log"

	"qurk"
)

func main() {
	const n = 30
	celebs := qurk.NewCelebrities(qurk.CelebrityConfig{N: n, Seed: 11})
	left := celebs.Celeb.Qualify("c")
	right := celebs.Photos.Qualify("p")

	fmt.Printf("Joining celeb(%d rows) with photos(%d rows): %d candidate pairs\n\n",
		left.Len(), right.Len(), left.Len()*right.Len())

	// --- Step 1: naive cross-product join, one pair per HIT.
	m1 := qurk.NewSimMarket(qurk.DefaultMarketConfig(11), celebs.Oracle())
	naive, err := qurk.RunCrossJoin(left, right, qurk.SamePersonTask(),
		qurk.JoinOptions{Algorithm: qurk.SimpleJoin, Assignments: 5}, m1)
	if err != nil {
		log.Fatal(err)
	}
	report("1. SimpleJoin, no filtering", celebs, naive.Matches, naive.HITCount)

	// --- Step 2: extract gender/hair/skin in one combined interface
	// and let the selector drop unreliable features (§3.2).
	m2 := qurk.NewSimMarket(qurk.DefaultMarketConfig(12), celebs.Oracle())
	features := qurk.CelebrityFeatures()
	extractOpts := qurk.ExtractOptions{Combined: true, BatchSize: 4, Assignments: 5, GroupID: "extract-left"}
	le, err := qurk.ExtractFeatures(left, features, extractOpts, m2)
	if err != nil {
		log.Fatal(err)
	}
	ro := extractOpts
	ro.GroupID = "extract-right"
	re, err := qurk.ExtractFeatures(right, features, ro, m2)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range features {
		k, err := le.Kappa(f.Field)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   feature %-7s kappa %.2f\n", f.Field, k)
	}

	kept, verdicts, err := qurk.ChooseFeatures(left, right, le, re, features,
		celebs.TrueMatches(), qurk.SelectionConfig{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range verdicts {
		fmt.Printf("   selector: %-7s kept=%-5v (%s)\n", v.Feature, v.Kept, v.Reason)
	}
	names := make([]string, len(kept))
	for i, f := range kept {
		names[i] = f.Field
	}

	// --- Step 3: filtered join with naive batching of 10 pairs/HIT.
	m3 := qurk.NewSimMarket(qurk.DefaultMarketConfig(13), celebs.Oracle())
	pairs := qurk.FilteredPairs(left, right, le, re, names)
	batched, err := qurk.RunJoin(pairs, qurk.SamePersonTask(),
		qurk.JoinOptions{Algorithm: qurk.NaiveJoin, BatchSize: 10, Assignments: 5}, m3)
	if err != nil {
		log.Fatal(err)
	}
	totalHITs := le.HITCount + re.HITCount + batched.HITCount
	fmt.Printf("\n   feature filtering kept %d of %d pairs\n", len(pairs), left.Len()*right.Len())
	report("2. Filtered + Naive-10 batched join", celebs, batched.Matches, totalHITs)

	fmt.Printf("\nCost reduction: $%.2f -> $%.2f (%.1fx)\n",
		qurk.DollarCost(naive.HITCount, 5), qurk.DollarCost(totalHITs, 5),
		float64(naive.HITCount)/float64(totalHITs))
}

// report prints accuracy against ground truth plus the dollar cost.
func report(label string, celebs *qurk.Celebrities, matches []qurk.JoinMatch, hits int) {
	tp, fp := 0, 0
	for _, m := range matches {
		if celebs.IsMatch(m.Pair.Left, m.Pair.Right) {
			tp++
		} else {
			fp++
		}
	}
	fmt.Printf("%s:\n   true positives %d/%d, false positives %d, %d HITs, cost $%.2f\n",
		label, tp, celebs.Celeb.Len(), fp, hits, qurk.DollarCost(hits, 5))
}
