// Command endtoend runs the paper's §5 query — join movie stills with
// actor headshots, keep one-person scenes, and order each actor's scenes
// by how flattering they are — twice: once naively and once with every
// optimization on, reporting the HIT reduction (paper: 14.5×).
package main

import (
	"fmt"
	"log"

	"qurk"
)

const queryText = `
SELECT name, scenes.img
FROM actors JOIN scenes
ON inScene(actors.img, scenes.img)
AND POSSIBLY numInScene(scenes.img) = 1
ORDER BY name, quality(scenes.img)`

func main() {
	movie := qurk.NewMovie(qurk.MovieConfig{Scenes: 211, Actors: 5, Seed: 5})

	fmt.Println("Query:")
	fmt.Println(queryText)
	fmt.Println()

	// Unoptimized: simple join (1 pair/HIT), comparison sort, and no
	// POSSIBLY pre-filter (strip it from the query).
	naiveQuery := `
SELECT name, scenes.img
FROM actors JOIN scenes
ON inScene(actors.img, scenes.img)
ORDER BY name, quality(scenes.img)`
	naiveHITs := run("UNOPTIMIZED (Simple join, Compare sort, no filter)", movie, naiveQuery, qurk.Options{
		JoinAlgorithm: qurk.SimpleJoin,
		SortMethod:    qurk.SortCompare,
	})

	// Optimized: numInScene pre-filter, 5×5 smart-batched join,
	// rating-based sort.
	optHITs := run("OPTIMIZED (filter, Smart 5x5 join, Rate sort)", movie, queryText, qurk.Options{
		JoinAlgorithm: qurk.SmartJoin,
		GridRows:      5,
		GridCols:      5,
		SortMethod:    qurk.SortRate,
	})

	fmt.Printf("HIT reduction: %d -> %d (%.1fx; paper reports 14.5x)\n",
		naiveHITs, optHITs, float64(naiveHITs)/float64(optHITs))
}

func run(label string, movie *qurk.Movie, src string, opts qurk.Options) int {
	market := qurk.NewSimMarket(qurk.DefaultMarketConfig(5), movie.Oracle())
	eng := qurk.NewEngine(market, opts)
	eng.Catalog.Register(movie.Actors)
	eng.Catalog.Register(movie.Scenes)
	eng.Library.MustRegister(qurk.InSceneTask())
	eng.Library.MustRegister(qurk.NumInSceneTask())
	eng.Library.MustRegister(qurk.QualityTask())

	planText, err := qurk.Explain(eng, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("---", label)
	fmt.Println(planText)

	out, stats, err := qurk.RunQuery(eng, src)
	if err != nil {
		log.Fatal(err)
	}
	// Score result rows against ground truth.
	correct := 0
	for i := 0; i < out.Len(); i++ {
		name := out.Row(i).MustGet("name").Text()
		img := out.Row(i).MustGet("img").Text()
		for a := 0; a < movie.Actors.Len(); a++ {
			if movie.Actors.Row(a).MustGet("name").Text() != name {
				continue
			}
			for s := 0; s < movie.Scenes.Len(); s++ {
				if movie.Scenes.Row(s).MustGet("img").Text() == img &&
					movie.InScene(movie.Actors.Row(a), movie.Scenes.Row(s)) {
					correct++
				}
			}
		}
	}
	fmt.Printf("result: %d rows (%d true inScene matches), %d HITs, cost $%.2f\n",
		out.Len(), correct, stats.TotalHITs(),
		qurk.DollarCost(stats.TotalHITs(), eng.Options.Assignments))
	// The streaming executor overlaps crowd phases (filter HIT chunks
	// feed the join while later chunks are still out), so the pipelined
	// end-to-end makespan beats the serial no-overlap estimate.
	fmt.Printf("makespan: %.2fh pipelined vs %.2fh serial estimate\n\n",
		stats.PipelineMakespanHours, stats.SerialMakespanHours())
	return stats.TotalHITs()
}
