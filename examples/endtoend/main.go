// Command endtoend runs the paper's §5 query — join movie stills with
// actor headshots, keep one-person scenes, and order each actor's scenes
// by how flattering they are — twice: once with deliberately naive
// interface choices, and once letting the cost-based optimizer pick the
// physical plan (the paper's 14.5× HIT reduction came from exactly
// these choices: POSSIBLY pre-filter, smart batching, rating sort).
package main

import (
	"context"
	"fmt"
	"log"

	"qurk"
)

const queryText = `
SELECT name, scenes.img
FROM actors JOIN scenes
ON inScene(actors.img, scenes.img)
AND POSSIBLY numInScene(scenes.img) = 1
ORDER BY name, quality(scenes.img)`

func main() {
	movie := qurk.NewMovie(qurk.MovieConfig{Scenes: 211, Actors: 5, Seed: 5})

	fmt.Println("Query:")
	fmt.Println(queryText)
	fmt.Println()

	// Unoptimized baseline: simple join (1 pair/HIT), comparison sort,
	// and no POSSIBLY pre-filter (strip it from the query). This is the
	// one case where picking interfaces by hand still makes sense — to
	// show what the optimizer saves.
	naiveQuery := `
SELECT name, scenes.img
FROM actors JOIN scenes
ON inScene(actors.img, scenes.img)
ORDER BY name, quality(scenes.img)`
	naiveHITs := runNaive(movie, naiveQuery)

	// Optimizer-first flow: build a client with DEFAULT options, let
	// Client.Optimize choose join/sort interfaces and batch shapes from
	// catalog cardinalities, and execute the annotated plan.
	optHITs := runOptimized(movie)

	fmt.Printf("HIT reduction: %d -> %d (%.1fx; paper reports 14.5x)\n",
		naiveHITs, optHITs, float64(naiveHITs)/float64(optHITs))
}

// newClient wires the movie dataset over a fresh simulated crowd.
func newClient(movie *qurk.Movie, opts qurk.Options) *qurk.Client {
	market := qurk.NewSimMarket(qurk.DefaultMarketConfig(5), movie.Oracle())
	client := qurk.NewClient(market, qurk.WithOptions(opts))
	eng := client.Engine()
	eng.Catalog.Register(movie.Actors)
	eng.Catalog.Register(movie.Scenes)
	eng.Library.MustRegister(qurk.InSceneTask())
	eng.Library.MustRegister(qurk.NumInSceneTask())
	eng.Library.MustRegister(qurk.QualityTask())
	return client
}

func runNaive(movie *qurk.Movie, src string) int {
	client := newClient(movie, qurk.Options{
		JoinAlgorithm: qurk.SimpleJoin,
		SortMethod:    qurk.SortCompare,
	})
	fmt.Println("--- UNOPTIMIZED (hand-picked: Simple join, Compare sort, no filter)")
	out, stats, err := client.Run(context.Background(), src)
	if err != nil {
		log.Fatal(err)
	}
	report(movie, client, out, stats)
	return stats.TotalHITs()
}

func runOptimized(movie *qurk.Movie) int {
	client := newClient(movie, qurk.Options{})
	// Optimize renders the costed plan — interface per operator,
	// estimated HITs and dollars — and returns the annotated tree that
	// RunPlan executes as-is.
	cp, err := client.Optimize(queryText, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- OPTIMIZED (cost-based operator selection)")
	fmt.Println(cp.Render())
	out, stats, err := qurk.RunPlan(client.Engine(), cp.Root)
	if err != nil {
		log.Fatal(err)
	}
	report(movie, client, out, stats)
	return stats.TotalHITs()
}

func report(movie *qurk.Movie, client *qurk.Client, out *qurk.Relation, stats *qurk.ExecStats) {
	// Score result rows against ground truth.
	correct := 0
	for i := 0; i < out.Len(); i++ {
		name := out.Row(i).MustGet("name").Text()
		img := out.Row(i).MustGet("img").Text()
		for a := 0; a < movie.Actors.Len(); a++ {
			if movie.Actors.Row(a).MustGet("name").Text() != name {
				continue
			}
			for s := 0; s < movie.Scenes.Len(); s++ {
				if movie.Scenes.Row(s).MustGet("img").Text() == img &&
					movie.InScene(movie.Actors.Row(a), movie.Scenes.Row(s)) {
					correct++
				}
			}
		}
	}
	fmt.Printf("result: %d rows (%d true inScene matches), %d HITs, cost $%.2f\n",
		out.Len(), correct, stats.TotalHITs(),
		qurk.DollarCost(stats.TotalHITs(), client.Engine().Options.Assignments))
	// The streaming executor overlaps crowd phases (filter HIT chunks
	// feed the join while later chunks are still out), so the pipelined
	// end-to-end makespan beats the serial no-overlap estimate.
	fmt.Printf("makespan: %.2fh pipelined vs %.2fh serial estimate\n\n",
		stats.PipelineMakespanHours, stats.SerialMakespanHours())
}
