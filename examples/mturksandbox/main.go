// Command mturksandbox runs the same declarative query on two crowd
// backends: the deterministic simulator, and — when sandbox credentials
// are present in the environment — the Mechanical Turk requester
// sandbox through the live REST client. Without credentials the sandbox
// half is skipped, so the example always runs offline.
//
// To run the sandbox half:
//
//	export AWS_ACCESS_KEY_ID=...      # an IAM user with MTurk access
//	export AWS_SECRET_ACCESS_KEY=...
//	go run ./examples/mturksandbox
//
// Sandbox HITs are free, but you must answer them yourself: open
// https://workersandbox.mturk.com, search for the HIT group, and submit
// assignments while this program polls. Keep N small — a real
// marketplace round trip is minutes, not microseconds. Pointing this
// example at the production endpoint instead would cost real dollars;
// it deliberately hard-codes the sandbox.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"qurk"
)

const queryText = `SELECT c.name FROM celeb AS c WHERE isFemale(c.img)`

func main() {
	// Tiny dataset: 4 tuples × 5 assignments = 4 HITs at batch 5 — a
	// sandbox session a single human can answer in a few minutes.
	celebs := qurk.NewCelebrities(qurk.CelebrityConfig{N: 4, Seed: 1})

	fmt.Println("Query:", queryText)
	fmt.Println("\n=== SimMarket (deterministic simulator) ===")
	runOn(qurk.NewSimMarket(qurk.DefaultMarketConfig(1), celebs.Oracle()), celebs)

	if os.Getenv("AWS_ACCESS_KEY_ID") == "" || os.Getenv("AWS_SECRET_ACCESS_KEY") == "" {
		fmt.Println("\n=== MTurk sandbox: SKIPPED ===")
		fmt.Println("set AWS_ACCESS_KEY_ID / AWS_SECRET_ACCESS_KEY to post the same HITs to the requester sandbox")
		return
	}

	fmt.Println("\n=== MTurk sandbox (live REST client) ===")
	client, err := qurk.NewMTurkClient(qurk.MTurkConfig{
		Endpoint:           qurk.MTurkSandboxEndpoint,
		PollInterval:       20 * time.Second,
		AssignmentDuration: 15 * time.Minute,
		Title:              "Is the person in the image a woman?",
	})
	if err != nil {
		log.Fatal(err)
	}
	balance, err := client.CheckBalance()
	if err != nil {
		log.Fatalf("credential check failed: %v", err)
	}
	fmt.Printf("sandbox balance: $%s (sandbox money — nothing real is spent)\n", balance)
	fmt.Println("posting HITs; answer them at https://workersandbox.mturk.com while this polls…")
	runOn(client, celebs)
}

// runOn executes the query over the given marketplace and reports
// rows, HITs, expirations, and makespan.
func runOn(market qurk.Marketplace, celebs *qurk.Celebrities) {
	c := qurk.NewClient(market)
	c.Engine().Catalog.Register(celebs.Celeb)
	c.Engine().Library.MustRegister(qurk.IsFemaleTask())

	out, stats, err := c.Run(context.Background(), queryText)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rows: %d of %d\n", out.Len(), celebs.Celeb.Len())
	for i := 0; i < out.Len(); i++ {
		fmt.Println("  -", out.Row(i).MustGet("name").Text())
	}
	fmt.Printf("%d HITs, cost $%.2f, makespan %.2fh\n",
		stats.TotalHITs(),
		qurk.DollarCost(stats.TotalHITs(), c.Engine().Options.Assignments),
		stats.PipelineMakespanHours)
	if n := stats.TotalExpired(); n > 0 {
		fmt.Printf("%d assignments expired (accepted but never submitted) and were re-posted\n", n)
	}
}
