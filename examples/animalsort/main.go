// Command animalsort runs the paper's sort study (§4.2) on the animals
// dataset: Compare vs Rate vs Hybrid on queries of increasing ambiguity
// (adult size, dangerousness, "belongs on Saturn"), reporting τ, the
// modified κ agreement signal, and HIT costs.
package main

import (
	"fmt"
	"log"

	"qurk"
)

func main() {
	animals := qurk.NewAnimals()
	queries := []struct {
		label string
		task  *qurk.RankTask
	}{
		{"adult size (Q2)", qurk.AnimalSizeTask()},
		{"dangerousness (Q3)", qurk.DangerousTask()},
		{"belongs on Saturn (Q4)", qurk.SaturnTask()},
	}

	for qi, q := range queries {
		fmt.Printf("=== Sort %d animals by %s ===\n", animals.Rel.Len(), q.label)

		// Comparison-based sort: quadratic HITs, best accuracy.
		m1 := qurk.NewSimMarket(qurk.DefaultMarketConfig(int64(20+qi)), animals.Oracle())
		cmp, err := qurk.Compare(animals.Rel, q.task,
			qurk.CompareOptions{GroupSize: 5, Assignments: 5, Seed: 1}, m1)
		if err != nil {
			log.Fatal(err)
		}
		kappa, err := cmp.ModifiedKappa()
		if err != nil {
			log.Fatal(err)
		}

		// Rating-based sort: linear HITs.
		m2 := qurk.NewSimMarket(qurk.DefaultMarketConfig(int64(30+qi)), animals.Oracle())
		rate, err := qurk.Rate(animals.Rel, q.task,
			qurk.RateOptions{BatchSize: 5, Assignments: 5, Seed: 1}, m2)
		if err != nil {
			log.Fatal(err)
		}
		tauRateVsCompare, err := qurk.TauBetweenOrders(cmp.Order, rate.Order)
		if err != nil {
			log.Fatal(err)
		}

		// Hybrid: rating seed plus 20 comparison windows.
		m3 := qurk.NewSimMarket(qurk.DefaultMarketConfig(int64(40+qi)), animals.Oracle())
		hy, err := qurk.Hybrid(animals.Rel, q.task, qurk.HybridOptions{
			Strategy: qurk.SlidingWindow, WindowSize: 5, Step: 6,
			Iterations: 20, Assignments: 5, Seed: 1,
			Rate: qurk.RateOptions{BatchSize: 5, Assignments: 5, Seed: 1},
		}, m3)
		if err != nil {
			log.Fatal(err)
		}
		tauHybridVsCompare, err := qurk.TauBetweenOrders(cmp.Order, hy.Order)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("  Compare: %3d HITs, agreement kappa %.2f, cycles %d\n",
			cmp.HITCount, kappa, cmp.CycleCount)
		fmt.Printf("  Rate:    %3d HITs, tau vs Compare %.2f\n", rate.HITCount, tauRateVsCompare)
		fmt.Printf("  Hybrid:  %3d HITs, tau vs Compare %.2f\n", hy.TotalHITs(), tauHybridVsCompare)
		if kappa < 0.2 {
			fmt.Println("  -> kappa is very low: this query may be too ambiguous to sort (paper Sec 4.2.3)")
		} else if tauRateVsCompare > 0.7 {
			fmt.Println("  -> Rate tracks Compare well: use the cheap linear interface")
		} else {
			fmt.Println("  -> Rate diverges from Compare: pay for comparisons or the hybrid")
		}

		fmt.Println("  Crowd order (least -> most):")
		fmt.Print("   ")
		for _, idx := range cmp.Order {
			fmt.Printf(" %s,", animals.Rel.Row(idx).MustGet("name").Text())
		}
		fmt.Println()
		fmt.Println()
	}

	// Bonus: MAX via the tournament interface (paper §2.3).
	m := qurk.NewSimMarket(qurk.DefaultMarketConfig(99), animals.Oracle())
	maxRes, err := qurk.Max(animals.Rel, qurk.AnimalSizeTask(),
		qurk.MaxOptions{BatchSize: 5, Assignments: 5}, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MAX(adult size) via %d tournament HITs: %s\n",
		maxRes.HITCount, animals.Rel.Row(maxRes.Index).MustGet("name").Text())
}
