// Command quickstart runs the paper's first example (§2.1): a crowd
// filter finding the female celebrities in a table, written in the TASK
// DSL, executed against the simulated marketplace through the Client
// API.
package main

import (
	"context"
	"fmt"
	"log"

	"qurk"
)

const script = `
TASK isFemale(field) TYPE Filter:
	Prompt: "<table><tr> \
	<td><img src='%s'></td> \
	<td>Is the person in the image a woman?</td> \
	</tr></table>", tuple[field]
	YesText: "Yes"
	NoText: "No"
	Combiner: MajorityVote

SELECT c.name FROM celeb AS c WHERE isFemale(c.img);
`

func main() {
	// Generate the celebrity dataset and a simulated crowd that knows
	// its ground truth.
	celebs := qurk.NewCelebrities(qurk.CelebrityConfig{N: 30, Seed: 7})
	market := qurk.NewSimMarket(qurk.DefaultMarketConfig(7), celebs.Oracle())

	// Build a client, register the table, and load the TASK DSL.
	client := qurk.NewClient(market,
		qurk.WithOptions(qurk.Options{Assignments: 5, FilterBatch: 5}))
	client.Engine().Catalog.Register(celebs.Celeb)
	parsed, err := qurk.ParseScript(script)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Engine().Library.LoadScript(parsed); err != nil {
		log.Fatal(err)
	}

	// Show the logical plan, then run the query.
	queryText := parsed.Queries[0].String()
	planText, err := client.Explain(queryText)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Query:", queryText)
	fmt.Println("\nPlan (crowd operators marked with a smiley):")
	fmt.Println(planText)

	out, stats, err := client.Run(context.Background(), queryText)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Crowd said these %d of %d celebrities are women:\n", out.Len(), celebs.Celeb.Len())
	for i := 0; i < out.Len(); i++ {
		fmt.Println("  -", out.Row(i).MustGet("name").Text())
	}
	asn := client.Engine().Options.Assignments
	fmt.Printf("\nCost: %d HITs x %d assignments = $%.2f\n",
		stats.TotalHITs(), asn, qurk.DollarCost(stats.TotalHITs(), asn))
	fmt.Println("\nLedger:")
	fmt.Println(client.Ledger().Report())
}
