// The Client API: one configured handle for running crowd queries.
//
// Client replaces the loose RunQuery / RunQueryDurable / Resume
// function family: construct it once over a marketplace with
// functional options (engine knobs, a shared catalog and task
// library, a write-ahead journal for durable runs, a dollar budget, a
// shared cross-query answer store), then Run, RunStream, Resume,
// Optimize, and Explain queries against it. The old functions remain
// as thin wrappers for compatibility.
package qurk

import (
	"context"
	"fmt"
	"strings"

	"qurk/internal/answerstore"
	"qurk/internal/core"
	"qurk/internal/cost"
	"qurk/internal/exec"
	"qurk/internal/obstats"
	"qurk/internal/relation"
	"qurk/internal/service"
	"qurk/internal/wal"
)

// --- Shared cross-query answer store (internal/answerstore) ---

type (
	// AnswerStore is the interface engines consult before posting any
	// crowd question: content already answered (by this query or an
	// earlier one) is served from the store and never posted.
	AnswerStore = core.AnswerStore
	// SharedAnswerStore is the persistent, concurrency-safe store
	// implementation shared across queries (and across qurkd tenants).
	SharedAnswerStore = answerstore.Store
	// AnswerStorePolicy gates what stored answers are servable
	// (minimum agreement, maximum age).
	AnswerStorePolicy = answerstore.Policy
	// AnswerStoreStats counts store traffic.
	AnswerStoreStats = answerstore.Stats
)

// OpenAnswerStore opens (or creates) a shared answer store; an empty
// path keeps it in memory only.
var OpenAnswerStore = answerstore.Open

// StatsStore is the persistent observed-statistics store: an
// append-only CRC-framed log of per-task observed selectivities,
// POSSIBLY pass fractions, sort group sizes, worker latency and
// agreement, aggregated into weighted means the optimizer blends with
// its priors at plan time (see docs/STATS.md).
type StatsStore = obstats.Store

// OpenStatsStore opens (or creates) an observed-statistics store; an
// empty path keeps it in memory only.
var OpenStatsStore = obstats.Open

// Shared-structure constructors for clients that pool a catalog or
// task library across engines.
var (
	// NewCatalog returns an empty table catalog.
	NewCatalog = relation.NewCatalog
	// NewLibrary returns an empty task library.
	NewLibrary = core.NewLibrary
)

// StreamSink receives result batches as the executor produces them
// (rows plus the virtual crowd clock at which they became available).
type StreamSink = exec.Sink

// ErrBudgetExceeded reports that a run hit its client (or tenant)
// dollar budget; posting stops immediately.
var ErrBudgetExceeded = service.ErrBudgetExceeded

// Client is a configured query-running handle over one marketplace.
// The zero value is not usable; construct with NewClient. A Client is
// safe for concurrent queries (the engine's services all are), though
// durable runs serialize on their journal file.
type Client struct {
	eng     *Engine
	journal string
	budget  *service.Tenant
}

// clientConfig accumulates functional options.
type clientConfig struct {
	opts      Options
	catalog   *Catalog
	library   *Library
	answers   AnswerStore
	obstats   core.ObservedStats
	journal   string
	budget    float64
	hasBudget bool
}

// ClientOption configures NewClient.
type ClientOption func(*clientConfig)

// WithOptions sets the engine execution knobs (batch sizes, join and
// sort interfaces, combiner, seed, ...).
func WithOptions(o Options) ClientOption {
	return func(c *clientConfig) { c.opts = o }
}

// WithAssignments sets workers per HIT without replacing the rest of
// the options.
func WithAssignments(n int) ClientOption {
	return func(c *clientConfig) { c.opts.Assignments = n }
}

// WithCatalog shares a table catalog (e.g. a dataset's, or one pooled
// across clients) instead of starting empty.
func WithCatalog(cat *Catalog) ClientOption {
	return func(c *clientConfig) { c.catalog = cat }
}

// WithLibrary shares a task library instead of starting empty.
func WithLibrary(lib *Library) ClientOption {
	return func(c *clientConfig) { c.library = lib }
}

// WithDataset wires a built-in dataset's catalog and task library
// (see OpenDataset).
func WithDataset(d *DatasetBundle) ClientOption {
	return func(c *clientConfig) { c.catalog, c.library = d.Catalog, d.Library }
}

// WithAnswerStore shares a cross-query answer store: questions with
// servable stored answers are never posted, and fresh answers feed
// the store for later queries.
func WithAnswerStore(s AnswerStore) ClientOption {
	return func(c *clientConfig) { c.answers = s }
}

// WithStatsStore shares an observed-statistics store across the
// client's runs (and, via a shared store, across clients): every run
// feeds its measured selectivities, POSSIBLY pass fractions, and sort
// group sizes into it, and the optimizer blends that history into its
// estimates at plan time. The store rides on the Engine, not Options,
// so attaching one never changes a durable run's journal fingerprint.
func WithStatsStore(s *StatsStore) ClientOption {
	return func(c *clientConfig) {
		if s != nil {
			c.obstats = s
		}
	}
}

// WithReplan enables mid-run re-optimization at pipeline breakers: the
// executor re-costs the join's pair interface once the first probe
// rows reveal the true POSSIBLY pass fraction (switching NaiveBatch→
// SmartBatch when grids are cheaper), and re-costs each sort group at
// its true size (switching Compare→Rate). minQuality floors the
// switched interface's estimated quality; 0 keeps the engine default.
// Replan settings live in Options, so they are part of a durable
// run's journal fingerprint — and re-plan decisions are themselves
// checkpointed, so resumes replay the same switches.
func WithReplan(minQuality float64) ClientOption {
	return func(c *clientConfig) {
		c.opts.Replan.Enabled = true
		c.opts.Replan.MinQuality = minQuality
	}
}

// WithJournal makes runs durable: Run records every marketplace
// interaction into a fresh write-ahead journal at path, and Resume
// picks an interrupted run back up with zero duplicate HIT posting.
func WithJournal(path string) ClientOption {
	return func(c *clientConfig) { c.journal = path }
}

// WithBudget caps the client's total crowd spend in dollars across
// all its runs; a run that would exceed it stops posting and fails
// with ErrBudgetExceeded. 0 means unlimited.
func WithBudget(dollars float64) ClientOption {
	return func(c *clientConfig) { c.budget, c.hasBudget = dollars, true }
}

// WithStreamChunk sets the streaming executor's HIT chunk size and
// posting lookahead.
func WithStreamChunk(hits, lookahead int) ClientOption {
	return func(c *clientConfig) {
		c.opts.StreamChunkHITs = hits
		c.opts.StreamLookahead = lookahead
	}
}

// NewClient builds a client over a marketplace.
func NewClient(market Marketplace, opts ...ClientOption) *Client {
	var cfg clientConfig
	for _, o := range opts {
		o(&cfg)
	}
	c := &Client{journal: cfg.journal}
	m := market
	if cfg.hasBudget && cfg.budget > 0 {
		c.budget = &service.Tenant{ID: "client", BudgetDollars: cfg.budget, Ledger: cost.NewLedger()}
		m = &service.BudgetGate{Tenant: c.budget, Label: "client", Inner: market}
	}
	c.eng = NewEngine(m, cfg.opts)
	if cfg.catalog != nil {
		c.eng.Catalog = cfg.catalog
	}
	if cfg.library != nil {
		c.eng.Library = cfg.library
	}
	c.eng.Answers = cfg.answers
	if cfg.obstats != nil {
		c.eng.ObStats = cfg.obstats
	}
	return c
}

// Engine exposes the underlying engine (catalog and library
// registration, ledger access, option inspection).
func (c *Client) Engine() *Engine { return c.eng }

// Ledger is the client's cost ledger.
func (c *Client) Ledger() *Ledger { return c.eng.Ledger }

// SpentDollars is the budget-gated spend so far (0 when no budget was
// configured — read Ledger for unbudgeted accounting).
func (c *Client) SpentDollars() float64 {
	if c.budget == nil {
		return 0
	}
	return c.budget.SpentDollars()
}

// Run executes one query. With WithJournal the run is durable (see
// RunQueryDurable); otherwise it is a plain cancellable run.
func (c *Client) Run(ctx context.Context, src string) (*Relation, *ExecStats, error) {
	if c.journal != "" {
		return runDurable(ctx, c.eng, src, c.journal)
	}
	return exec.RunQueryContext(ctx, c.eng, src)
}

// RunStream executes one query, delivering result batches to sink as
// the executor produces them; the materialized relation is still
// returned. Durable journaling applies as in Run.
func (c *Client) RunStream(ctx context.Context, src string, sink StreamSink) (*Relation, *ExecStats, error) {
	if c.journal != "" {
		j, err := wal.Create(c.journal, journalMeta(c.eng, src))
		if err != nil {
			return nil, nil, err
		}
		return runJournaledStream(ctx, c.eng, src, j, sink)
	}
	return exec.RunQueryStreamContext(ctx, c.eng, src, sink)
}

// Resume continues an interrupted durable run from the client's
// journal; it requires WithJournal.
func (c *Client) Resume(ctx context.Context, src string) (*Relation, *ExecStats, error) {
	if c.journal == "" {
		return nil, nil, fmt.Errorf("qurk: Resume needs a journal (configure the client with WithJournal)")
	}
	return resumeJournal(ctx, c.eng, src, c.journal)
}

// Optimize runs the cost-based operator-selection pass for one query
// (budgetDollars 0 = unconstrained).
func (c *Client) Optimize(src string, budgetDollars float64) (*CostedPlan, error) {
	return Optimize(c.eng, src, budgetDollars)
}

// Explain renders the costed physical plan for one query.
func (c *Client) Explain(src string, opts ...ExplainOptions) (string, error) {
	return Explain(c.eng, src, opts...)
}

// --- Built-in dataset bundles ---

// DatasetBundle packages one built-in dataset ready for a Client: its
// tables in a catalog, its task templates in a library, and its
// ground-truth oracle for the simulated marketplace.
type DatasetBundle struct {
	// Name is the canonical dataset name.
	Name string
	// Catalog holds the dataset's tables.
	Catalog *Catalog
	// Library holds the dataset's task templates.
	Library *Library
	// Oracle answers the dataset's questions with ground truth (feed
	// it to NewSimMarket).
	Oracle Oracle
}

// OpenDataset builds a built-in dataset by name (celebrities, squares,
// animals, movie). n sizes the generated datasets (celebrity count,
// square count); seed drives their generation.
func OpenDataset(name string, n int, seed int64) (*DatasetBundle, error) {
	b := &DatasetBundle{Catalog: NewCatalog(), Library: NewLibrary()}
	switch strings.ToLower(name) {
	case "celebrities", "celebs", "celeb":
		b.Name = "celebrities"
		d := NewCelebrities(CelebrityConfig{N: n, Seed: seed})
		b.Oracle = d.Oracle()
		b.Catalog.Register(d.Celeb)
		b.Catalog.Register(d.Photos)
		for _, t := range []Task{IsFemaleTask(), SamePersonTask(), GenderTask(), HairColorTask(), SkinColorTask()} {
			b.Library.MustRegister(t)
		}
	case "squares":
		b.Name = "squares"
		s := NewSquares(n)
		b.Oracle = s.Oracle()
		b.Catalog.Register(s.Rel)
		b.Library.MustRegister(SquareSorterTask())
	case "animals":
		b.Name = "animals"
		a := NewAnimals()
		b.Oracle = a.Oracle()
		b.Catalog.Register(a.Rel)
		for _, t := range []Task{AnimalSizeTask(), DangerousTask(), SaturnTask(), AnimalInfoTask()} {
			b.Library.MustRegister(t)
		}
	case "movie":
		b.Name = "movie"
		m := NewMovie(MovieConfig{Seed: seed})
		b.Oracle = m.Oracle()
		b.Catalog.Register(m.Actors)
		b.Catalog.Register(m.Scenes)
		for _, t := range []Task{InSceneTask(), NumInSceneTask(), QualityTask()} {
			b.Library.MustRegister(t)
		}
	default:
		return nil, fmt.Errorf("qurk: unknown dataset %q (want celebrities, squares, animals, or movie)", name)
	}
	return b, nil
}
