module qurk

go 1.22
